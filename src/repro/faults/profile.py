"""Fault profiles: the runtime-tunable knobs of the injection layer.

A :class:`FaultProfile` gives each fault kind a per-transaction-attempt
probability (plus a magnitude for latency spikes).  Profiles are plain
value objects: the :class:`~repro.faults.injector.FaultInjector` samples
against whichever profile is installed at the moment an attempt begins,
which is what makes ``PUT /v1/workloads/<tenant>/faults`` a live control
verb alongside rate and mixture.

The ``REPRO_CHAOS_*`` environment variables feed :func:`default_profile`
so an entire test suite can run under a nonzero fault profile without
touching any call site — that is the CI chaos job's hook (see
docs/faults.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping

from ..errors import ConfigurationError

#: Fault kinds, in the order the injector partitions the unit interval.
KIND_ABORT = "abort"
KIND_LOCK_TIMEOUT = "lock_timeout"
KIND_DISCONNECT = "disconnect"
KIND_LATENCY = "latency"
FAULT_KINDS = (KIND_ABORT, KIND_LOCK_TIMEOUT, KIND_DISCONNECT, KIND_LATENCY)

_PROBABILITY_FIELDS = {
    KIND_ABORT: "abort_probability",
    KIND_LOCK_TIMEOUT: "lock_timeout_probability",
    KIND_DISCONNECT: "disconnect_probability",
    KIND_LATENCY: "latency_probability",
}


@dataclass(frozen=True)
class FaultProfile:
    """Per-attempt injection probabilities for one tenant.

    At most one fault fires per transaction attempt: the injector draws a
    single uniform variate and walks the cumulative probabilities, so the
    kinds are mutually exclusive and their probabilities must sum to at
    most 1.
    """

    abort_probability: float = 0.0
    lock_timeout_probability: float = 0.0
    disconnect_probability: float = 0.0
    latency_probability: float = 0.0
    #: Injected latency spikes are uniform in [min, max] seconds.
    latency_min: float = 0.05
    latency_max: float = 0.25

    def __post_init__(self) -> None:
        for kind, attr in _PROBABILITY_FIELDS.items():
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{attr} must be in [0, 1], got {value!r}")
        if self.total_probability > 1.0:
            raise ConfigurationError(
                "fault probabilities must sum to at most 1, got "
                f"{self.total_probability!r}")
        if self.latency_min < 0 or self.latency_max < self.latency_min:
            raise ConfigurationError(
                "latency spike bounds must satisfy 0 <= min <= max")

    @property
    def total_probability(self) -> float:
        return (self.abort_probability + self.lock_timeout_probability
                + self.disconnect_probability + self.latency_probability)

    def probability(self, kind: str) -> float:
        return float(getattr(self, _PROBABILITY_FIELDS[kind]))

    @property
    def enabled(self) -> bool:
        return self.total_probability > 0.0

    # -- (de)serialisation for the control plane ----------------------------

    def to_dict(self) -> dict[str, float]:
        return {
            "abort_probability": self.abort_probability,
            "lock_timeout_probability": self.lock_timeout_probability,
            "disconnect_probability": self.disconnect_probability,
            "latency_probability": self.latency_probability,
            "latency_min": self.latency_min,
            "latency_max": self.latency_max,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "FaultProfile":
        known = set(cls().to_dict())
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault profile fields: {sorted(unknown)}; "
                f"known: {sorted(known)}")
        try:
            values = {key: float(raw[key]) for key in raw}  # type: ignore
        except (TypeError, ValueError):
            raise ConfigurationError(
                "fault profile values must be numbers") from None
        return cls(**values)

    def updated(self, raw: Mapping[str, object]) -> "FaultProfile":
        """A copy with the given fields replaced (partial PUT semantics)."""
        merged = self.to_dict()
        candidate = FaultProfile.from_dict(raw)  # validates field names
        for key in raw:
            merged[key] = getattr(candidate, key)
        return FaultProfile(**merged)


def zero_profile() -> FaultProfile:
    return FaultProfile()


#: Environment knobs read by :func:`default_profile` (the CI chaos hook).
ENV_ABORTS = "REPRO_CHAOS_ABORTS"
ENV_LATENCY = "REPRO_CHAOS_LATENCY"
ENV_LOCK_TIMEOUTS = "REPRO_CHAOS_LOCK_TIMEOUTS"
ENV_DISCONNECTS = "REPRO_CHAOS_DISCONNECTS"


def default_profile() -> FaultProfile:
    """The profile new workloads start with: zero unless chaos is enabled.

    Each ``REPRO_CHAOS_*`` variable is a probability; unset or
    unparsable values count as 0, so normal runs are never perturbed.
    """
    def env(name: str) -> float:
        raw = os.environ.get(name, "")
        try:
            return float(raw)
        except ValueError:
            return 0.0

    profile = FaultProfile()
    aborts = env(ENV_ABORTS)
    latency = env(ENV_LATENCY)
    lock_timeouts = env(ENV_LOCK_TIMEOUTS)
    disconnects = env(ENV_DISCONNECTS)
    if aborts or latency or lock_timeouts or disconnects:
        profile = replace(
            profile,
            abort_probability=aborts,
            latency_probability=latency,
            lock_timeout_probability=lock_timeouts,
            disconnect_probability=disconnects,
            # Chaos runs share real suites; keep spikes short.
            latency_min=0.001, latency_max=0.01)
    return profile
