"""The deterministic fault injector.

One :class:`FaultInjector` per workload, seeded from the workload's
configured seed via :func:`repro.rand.make_rng` — the fault *schedule*
(which attempt gets which fault, and at which statement inside the
transaction it fires) is therefore a pure function of ``(seed, tenant,
profile, attempt sequence)``: identical runs replay identical faults.

The injector is also the resilience layer's ground truth.  Every
injected fault is counted per kind and appended to an event log, which
``benchmarks/bench_resilience.py`` reconciles against the counters the
control plane reports through ``GET /v1/metrics``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..rand import make_rng
from .profile import (FAULT_KINDS, FaultProfile, KIND_ABORT, KIND_DISCONNECT,
                      KIND_LATENCY, KIND_LOCK_TIMEOUT, zero_profile)

#: Injected faults fire at a statement index drawn from [0, _MAX_STATEMENT];
#: attempts with fewer statements fire the fault at commit instead, so a
#: planned fault never silently evaporates.
_MAX_STATEMENT = 2


@dataclass(frozen=True)
class FaultPlan:
    """What the injector decided for one transaction attempt."""

    index: int              # global attempt sequence number
    txn_name: str
    kind: str               # one of FAULT_KINDS
    at_statement: int = 0   # statement boundary the fault fires at
    latency: float = 0.0    # extra seconds, for KIND_LATENCY


class FaultInjector:
    """Per-tenant deterministic fault source with a ground-truth log."""

    def __init__(self, seed: Optional[int] = None, tenant: str = "tenant-0",
                 profile: Optional[FaultProfile] = None) -> None:
        self.tenant = tenant
        self._rng = make_rng(seed, "faults", tenant)
        self._profile = profile or zero_profile()
        self._lock = threading.Lock()
        self._attempts = 0
        self._injected = {kind: 0 for kind in FAULT_KINDS}
        self._log: list[FaultPlan] = []

    # -- profile control (the PUT /v1/.../faults verb) ----------------------

    def profile(self) -> FaultProfile:
        with self._lock:
            return self._profile

    def set_profile(self, profile: FaultProfile) -> None:
        with self._lock:
            self._profile = profile

    # -- the per-attempt decision -------------------------------------------

    @property
    def armed(self) -> bool:
        """Whether the current profile can inject anything.

        A lock-free read (profile swaps are atomic reference assignments)
        so the executors' hot path can skip :meth:`attempt_begin` — and
        its per-attempt lock — entirely while faults are disabled.  The
        ``attempts`` counter therefore counts attempts observed while
        armed, which is exactly the sequence the fault schedule is a
        function of.
        """
        return self._profile.enabled

    def attempt_begin(self, txn_name: str) -> Optional[FaultPlan]:
        """Decide the fault (if any) for the attempt that is starting.

        A single uniform draw is partitioned by the profile's cumulative
        probabilities so fault kinds are mutually exclusive and the
        schedule stays deterministic under a fixed profile.
        """
        with self._lock:
            index = self._attempts
            self._attempts += 1
            profile = self._profile
            if not profile.enabled:
                return None
            draw = self._rng.random()
            acc = 0.0
            chosen: Optional[str] = None
            for kind in FAULT_KINDS:
                acc += profile.probability(kind)
                if draw < acc:
                    chosen = kind
                    break
            if chosen is None:
                return None
            at_statement = self._rng.randint(0, _MAX_STATEMENT)
            latency = 0.0
            if chosen == KIND_LATENCY:
                latency = self._rng.uniform(profile.latency_min,
                                            profile.latency_max)
            plan = FaultPlan(index=index, txn_name=txn_name, kind=chosen,
                             at_statement=at_statement, latency=latency)
            self._injected[chosen] += 1
            self._log.append(plan)
            return plan

    # -- ground truth --------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Injected-fault counts per kind plus totals; the log's summary."""
        with self._lock:
            counts = dict(self._injected)
            counts["total"] = sum(self._injected.values())
            counts["attempts"] = self._attempts
            return counts

    def log(self) -> list[FaultPlan]:
        """Every injected fault, in decision order (copy)."""
        with self._lock:
            return list(self._log)

    def schedule(self) -> list[tuple[int, str, str]]:
        """The (attempt index, txn, kind) triples — the determinism oracle."""
        with self._lock:
            return [(p.index, p.txn_name, p.kind) for p in self._log]


__all__ = ["FaultInjector", "FaultPlan", "KIND_ABORT", "KIND_DISCONNECT",
           "KIND_LATENCY", "KIND_LOCK_TIMEOUT"]
