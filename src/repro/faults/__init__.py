"""Deterministic fault injection at the engine connection boundary.

"Chaos" is the fourth control verb of the control plane, next to rate,
mixture, and think time: every workload owns a seeded
:class:`FaultInjector` whose :class:`FaultProfile` can be re-tuned
mid-run through ``PUT /v1/workloads/<tenant>/faults``.  Injected faults
surface as the same exception types real engine failures use
(:class:`~repro.errors.TransactionAborted` subclasses and a retryable
:class:`~repro.errors.InjectedDisconnect`), so the resilience policy in
``repro.core.resilience`` treats organic and injected failures
identically.  See docs/faults.md.
"""

from .connection import CONNECTION_FAULT_KINDS, FaultingConnection
from .injector import FaultInjector, FaultPlan
from .profile import (ENV_ABORTS, ENV_DISCONNECTS, ENV_LATENCY,
                      ENV_LOCK_TIMEOUTS, FAULT_KINDS, FaultProfile,
                      KIND_ABORT, KIND_DISCONNECT, KIND_LATENCY,
                      KIND_LOCK_TIMEOUT, default_profile, zero_profile)

__all__ = [
    "CONNECTION_FAULT_KINDS", "FaultingConnection", "FaultInjector",
    "FaultPlan", "FaultProfile", "FAULT_KINDS", "KIND_ABORT",
    "KIND_DISCONNECT", "KIND_LATENCY", "KIND_LOCK_TIMEOUT",
    "ENV_ABORTS", "ENV_DISCONNECTS", "ENV_LATENCY", "ENV_LOCK_TIMEOUTS",
    "default_profile", "zero_profile",
]
