"""The BenchPress game session (paper §4).

One session glues together:

* a live workload (via the control API — the same surface the REST server
  exposes), whose delivered throughput is the character's altitude;
* an obstacle :class:`~repro.benchpress.challenges.Course`;
* a :class:`~repro.benchpress.physics.Character` with gravity and jumps;
* an optional :class:`~repro.benchpress.pilots.Pilot` input source.

Per tick: apply input (unless inside an autopilot Tunnel), apply gravity,
push the requested rate through the API, observe the *measured*
throughput, and check collisions.  Failing an obstacle ends the game and
halts the benchmark (§4.1: "This will cause BenchPress to halt the
benchmark and reset the database").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..api.control import ControlApi
from ..errors import ApiError
from .challenges import Course, Obstacle
from .physics import Character
from .pilots import Pilot

STATE_READY = "ready"
STATE_RUNNING = "running"
STATE_CRASHED = "crashed"
STATE_COMPLETED = "completed"

#: Requested rates below this pause the workload (character on the floor).
MIN_PLAYABLE_RATE = 0.5


@dataclass
class GameEvent:
    time: float
    kind: str  # tick | crash | complete | mixture | pause | obstacle-pass
    detail: dict = field(default_factory=dict)


class GameSession:
    """One player's run through a course."""

    def __init__(self, control: ControlApi, tenant: str, course: Course,
                 character: Optional[Character] = None,
                 pilot: Optional[Pilot] = None,
                 measure_window: float = 2.0,
                 crash_grace_ticks: int = 2,
                 warmup: float = 5.0,
                 halt_on_crash: bool = True) -> None:
        self.control = control
        self.tenant = tenant
        self.course = course
        self.character = character or Character()
        self.pilot = pilot
        self.measure_window = measure_window
        self.crash_grace_ticks = crash_grace_ticks
        self.warmup = warmup
        self.halt_on_crash = halt_on_crash

        self.state = STATE_READY
        self._started_at = 0.0
        self.score = 0.0
        self.obstacles_passed = 0
        self.events: list[GameEvent] = []
        self.altitude_history: list[tuple[float, float, float]] = []
        self._out_of_corridor_ticks = 0
        self._last_obstacle: Optional[Obstacle] = None
        self._last_tick: Optional[float] = None
        self._workload_paused = False

    # -- public controls (the demo's keyboard surface) ----------------------

    def jump(self) -> float:
        return self.character.jump()

    def duck(self) -> float:
        return self.character.duck()

    def change_mixture(self, preset: str) -> None:
        """Pause, swap the mixture, resume (paper §4.1.1 / Fig. 2d)."""
        self.control.pause(self.tenant)
        self._log("pause", {})
        try:
            self.control.set_preset(self.tenant, preset)
            self._log("mixture", {"preset": preset})
        finally:
            self.control.resume(self.tenant)

    def set_custom_mixture(self, weights: dict[str, float]) -> None:
        self.control.pause(self.tenant)
        self._log("pause", {})
        try:
            self.control.set_weights(self.tenant, weights)
            self._log("mixture", {"weights": weights})
        finally:
            self.control.resume(self.tenant)

    # -- game loop ------------------------------------------------------------

    def start(self, now: float) -> None:
        self.state = STATE_RUNNING
        self._last_tick = now
        self._started_at = now
        self._push_rate()

    def tick(self, now: float) -> str:
        """Advance one frame; returns the session state."""
        if self.state != STATE_RUNNING:
            return self.state
        dt = max(0.0, now - self._last_tick) if self._last_tick else 1.0
        self._last_tick = now

        in_autopilot = self._in_autopilot(now)
        if in_autopilot:
            # Autopilot zones fix the target execution: input is ignored
            # and the requested rate holds constant (§4.1.2 Tunnels).
            pass
        else:
            if self.pilot is not None:
                self.pilot.act(self, now)
            self.character.apply_gravity(dt)
        self._push_rate()

        # Altitude comes from the streaming metrics endpoint: the same
        # windowed throughput as /status, but O(bins) per poll — a 60 Hz
        # game loop over a long run must not rescan the sample list.
        metrics = self.control.metrics(self.tenant, now,
                                       window=self.measure_window)
        delivered = float(metrics["window"]["throughput"])
        self.character.observe(delivered)
        self.altitude_history.append(
            (now, self.character.requested_rate, delivered))

        if now - self._started_at >= self.warmup:
            self._check_collision(now)
        if self.state == STATE_RUNNING:
            self.score += dt
            if now >= self.course.end:
                self.state = STATE_COMPLETED
                self._log("complete", {"score": self.score,
                                       "obstacles": self.obstacles_passed})
        return self.state

    def run_on(self, executor, tick: float = 1.0,
               start: float = 0.0) -> None:
        """Schedule the game loop on a SimulatedExecutor's clock."""
        clock = executor.clock

        def loop(when: float) -> None:
            if when == start:
                self.start(when)
            state = self.tick(when)
            if state == STATE_RUNNING:
                clock.call_at(when + tick, lambda: loop(when + tick))

        clock.call_at(start, lambda: loop(start))

    # -- internals ------------------------------------------------------------

    def _in_autopilot(self, now: float) -> bool:
        challenge = self.course.challenge_at(now)
        return bool(challenge and challenge.autopilot)

    def _push_rate(self) -> None:
        """Translate the character's requested rate into an API command."""
        rate = self.character.requested_rate
        try:
            if rate < MIN_PLAYABLE_RATE:
                if not self._workload_paused:
                    self.control.pause(self.tenant)
                    self._workload_paused = True
            else:
                if self._workload_paused:
                    self.control.resume(self.tenant)
                    self._workload_paused = False
                self.control.set_rate(self.tenant, rate)
        except ApiError:
            pass  # workload finished underneath the game

    def _check_collision(self, now: float) -> None:
        obstacle = self.course.obstacle_at(now)
        if self._last_obstacle is not None and (
                obstacle is None or obstacle is not self._last_obstacle):
            self.obstacles_passed += 1
            self._log("obstacle-pass", {"low": self._last_obstacle.low,
                                        "high": self._last_obstacle.high})
        self._last_obstacle = obstacle
        if obstacle is None:
            self._out_of_corridor_ticks = 0
            return
        if obstacle.contains_altitude(self.character.altitude):
            self._out_of_corridor_ticks = 0
            return
        self._out_of_corridor_ticks += 1
        if self._out_of_corridor_ticks > self.crash_grace_ticks:
            self.state = STATE_CRASHED
            self._log("crash", {
                "altitude": self.character.altitude,
                "requested": self.character.requested_rate,
                "corridor": [obstacle.low, obstacle.high],
            })
            if self.halt_on_crash:
                try:
                    self.control.pause(self.tenant)
                except ApiError:
                    pass

    def _log(self, kind: str, detail: dict) -> None:
        when = self._last_tick if self._last_tick is not None else 0.0
        self.events.append(GameEvent(when, kind, detail))

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict[str, object]:
        return {
            "tenant": self.tenant,
            "state": self.state,
            "score": self.score,
            "obstacles_passed": self.obstacles_passed,
            "crashes": sum(1 for e in self.events if e.kind == "crash"),
            "mixture_changes": [e.detail for e in self.events
                                if e.kind == "mixture"],
        }
