"""Input sources for headless play.

The SIGMOD demo reads a keyboard/controller; the reproduction drives the
same game loop with programmable pilots so challenges are testable:

* :class:`PerfectPilot` — always requests the current corridor midpoint
  (isolates DBMS behaviour from player skill: any crash is the DBMS);
* :class:`GreedyPilot` — always requests more than the corridor allows,
  the "hold the jump button" player;
* :class:`NoInputPilot` — never presses anything (gravity demo);
* :class:`ScriptedPilot` — replays a list of timed actions, for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .game import GameSession


class Pilot:
    """Base input source; ``act`` runs once per game tick."""

    def act(self, session: "GameSession", now: float) -> None:
        raise NotImplementedError


class NoInputPilot(Pilot):
    """Touch nothing: gravity pulls the requested rate to zero."""

    def act(self, session: "GameSession", now: float) -> None:
        return None


@dataclass
class PerfectPilot(Pilot):
    """Track the corridor midpoint, anticipating by ``lookahead`` seconds.

    The anticipation mirrors a human seeing obstacles scroll toward the
    character before reaching them.
    """

    lookahead: float = 1.0

    def act(self, session: "GameSession", now: float) -> None:
        course = session.course
        obstacle = (course.obstacle_at(now + self.lookahead)
                    or course.obstacle_at(now))
        if obstacle is not None:
            session.character.set_requested(obstacle.target)


@dataclass
class GreedyPilot(Pilot):
    """Always ask for ``factor`` times the corridor ceiling (or jump)."""

    factor: float = 1.5

    def act(self, session: "GameSession", now: float) -> None:
        obstacle = session.course.obstacle_at(now)
        if obstacle is not None:
            session.character.set_requested(obstacle.high * self.factor)
        else:
            session.character.jump()


@dataclass
class AdaptivePilot(Pilot):
    """Monitoring-guided play (paper §4.2).

    "This information can be useful for the user to predict potential
    drops in performance (e.g., when getting close to being CPU-bound).
    Hence, the user can take the necessary actions to prevent an eventual
    crash into an obstacle by tuning down the transaction rate..."

    The pilot tracks the corridor like :class:`PerfectPilot`, but watches
    the server monitor's saturation signal (lock-wait time per second):
    when it rises past ``lock_wait_threshold``, the pilot both eases the
    requested rate toward the corridor *floor* and — mirroring §4.2's
    "lower the percentage of write-intensive transactions" — switches to
    the read-only preset until the signal clears.
    """

    monitor: object = None  # an EngineMonitor
    lookahead: float = 1.0
    lock_wait_threshold: float = 0.05  # seconds of lock wait per second
    _defensive: bool = field(default=False, repr=False)

    def act(self, session: "GameSession", now: float) -> None:
        course = session.course
        obstacle = (course.obstacle_at(now + self.lookahead)
                    or course.obstacle_at(now))
        if obstacle is None:
            return
        saturated = (self.monitor is not None
                     and self.monitor.saturation_signal()
                     > self.lock_wait_threshold)
        if saturated and not self._defensive:
            self._defensive = True
            try:
                session.change_mixture("read-only")
            except Exception:
                pass  # benchmark may have no read-only preset
        elif not saturated and self._defensive:
            self._defensive = False
            try:
                session.change_mixture("default")
            except Exception:
                pass
        if saturated:
            # Aim low in the corridor: margin against jitter and queueing.
            session.character.set_requested(
                obstacle.low + (obstacle.target - obstacle.low) * 0.5)
        else:
            session.character.set_requested(obstacle.target)


@dataclass
class ScriptedPilot(Pilot):
    """Replay (time, callable) actions; each fires once when due.

    Actions receive the session, e.g.::

        ScriptedPilot([(5.0, lambda s: s.character.jump()),
                       (9.0, lambda s: s.change_mixture("read-only"))])
    """

    script: Sequence[tuple[float, Callable[["GameSession"], None]]] = ()
    _fired: set[int] = field(default_factory=set)

    def act(self, session: "GameSession", now: float) -> None:
        for index, (when, action) in enumerate(self.script):
            if index not in self._fired and now >= when:
                self._fired.add(index)
                action(session)
