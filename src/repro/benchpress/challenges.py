"""Challenge shapes (paper §4.1.2): Steps, Sinusoidal, Peak, Tunnels.

A challenge is a sequence of :class:`Obstacle` corridors: at time ``t`` the
character (the DBMS's delivered throughput) must fly inside
``[low(t), high(t)]`` or crash.  Tunnels are *autopilot zones*: user input
is ignored and the DBMS must hold a constant tight corridor on its own.

Challenges can also be loaded from configuration dictionaries, matching the
paper's "new challenges can be created using a configuration file".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Obstacle:
    """A corridor the throughput must stay inside for a time span."""

    start: float
    duration: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("obstacle duration must be positive")
        if self.low < 0 or self.high <= self.low:
            raise ConfigurationError(
                f"invalid corridor [{self.low}, {self.high}]")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def target(self) -> float:
        """The corridor midpoint: what a perfect pilot requests."""
        return (self.low + self.high) / 2.0

    def contains_time(self, t: float) -> bool:
        return self.start <= t < self.end

    def contains_altitude(self, altitude: float) -> bool:
        return self.low <= altitude <= self.high


@dataclass(frozen=True)
class Challenge:
    """A named series of obstacles, optionally an autopilot zone."""

    name: str
    shape: str
    obstacles: tuple[Obstacle, ...]
    autopilot: bool = False

    @property
    def start(self) -> float:
        return self.obstacles[0].start

    @property
    def end(self) -> float:
        return self.obstacles[-1].end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def obstacle_at(self, t: float) -> Optional[Obstacle]:
        for obstacle in self.obstacles:
            if obstacle.contains_time(t):
                return obstacle
        return None

    def target_at(self, t: float) -> Optional[float]:
        obstacle = self.obstacle_at(t)
        return obstacle.target if obstacle else None

    def shifted(self, offset: float) -> "Challenge":
        return Challenge(self.name, self.shape, tuple(
            Obstacle(o.start + offset, o.duration, o.low, o.high)
            for o in self.obstacles), self.autopilot)


# ---------------------------------------------------------------------------
# The four shapes of §4.1.2
# ---------------------------------------------------------------------------


def steps(base: float, step: float, count: int, width: float,
          corridor: float = 0.4, start: float = 0.0,
          descending: bool = False, name: str = "steps") -> Challenge:
    """Increasing (or decreasing) throughput levels.

    "This simulates an increasing load on the database; at some point the
    DBMS will become saturated and be unable to process any more
    transactions."
    """
    if count <= 0:
        raise ConfigurationError("steps challenge needs at least one step")
    obstacles = []
    for i in range(count):
        level = base + step * (count - 1 - i if descending else i)
        half = max(1.0, level * corridor / 2.0)
        obstacles.append(Obstacle(start + i * width, width,
                                  max(0.0, level - half), level + half))
    return Challenge(name, "steps", tuple(obstacles))


def sinusoidal(center: float, amplitude: float, period: float,
               duration: float, corridor: float = 0.4,
               start: float = 0.0, resolution: float = 1.0,
               name: str = "sinusoidal") -> Challenge:
    """Recurring up-and-down pattern.

    "This demonstrates a fluctuating load and tests the ability of the
    DBMS to gracefully respond without much jitter."
    """
    if amplitude >= center:
        raise ConfigurationError("amplitude must be below the center level")
    obstacles = []
    t = 0.0
    while t < duration:
        span = min(resolution, duration - t)
        level = center + amplitude * math.sin(2 * math.pi * t / period)
        half = max(1.0, level * corridor / 2.0)
        obstacles.append(Obstacle(start + t, span,
                                  max(0.0, level - half), level + half))
        t += span
    return Challenge(name, "sinusoidal", tuple(obstacles))


def peak(low: float, high: float, lead: float, burst: float,
         tail: float, corridor: float = 0.5, start: float = 0.0,
         name: str = "peak") -> Challenge:
    """Steady state, a short burst, then back to normal.

    "This will show the ability of a DBMS to respond to some sporadic and
    sudden increase in load."
    """
    if high <= low:
        raise ConfigurationError("peak level must exceed the steady level")
    half_low = max(1.0, low * corridor / 2.0)
    half_high = max(1.0, high * corridor / 2.0)
    obstacles = (
        Obstacle(start, lead, max(0.0, low - half_low), low + half_low),
        Obstacle(start + lead, burst, max(0.0, high - half_high),
                 high + half_high),
        Obstacle(start + lead + burst, tail, max(0.0, low - half_low),
                 low + half_low),
    )
    return Challenge(name, "peak", obstacles)


def tunnel(level: float, duration: float, corridor: float = 0.2,
           start: float = 0.0, name: str = "tunnel") -> Challenge:
    """Autopilot zone: a long constant tight corridor.

    "This challenge expects the DBMS to deliver a constant tight
    throughput for a long period of time" — jittery engines fail it.
    """
    half = max(1.0, level * corridor / 2.0)
    obstacle = Obstacle(start, duration, max(0.0, level - half),
                        level + half)
    return Challenge(name, "tunnel", (obstacle,), autopilot=True)


SHAPE_BUILDERS: dict[str, Callable[..., Challenge]] = {
    "steps": steps,
    "sinusoidal": sinusoidal,
    "peak": peak,
    "tunnel": tunnel,
}


def challenge_from_config(config: dict) -> Challenge:
    """Build a challenge from a configuration dictionary.

    ``{"shape": "steps", "base": 50, "step": 25, "count": 4, "width": 10}``
    """
    raw = dict(config)
    shape = raw.pop("shape", None)
    if shape not in SHAPE_BUILDERS:
        known = ", ".join(sorted(SHAPE_BUILDERS))
        raise ConfigurationError(
            f"unknown challenge shape {shape!r}; available: {known}")
    return SHAPE_BUILDERS[shape](**raw)


@dataclass
class Course:
    """A horizontally scrolling obstacle course: challenges end to end."""

    challenges: list[Challenge] = field(default_factory=list)

    @classmethod
    def build(cls, challenges: Sequence[Challenge],
              gap: float = 5.0, start: float = 0.0) -> "Course":
        """Lay out challenges sequentially with a recovery gap between."""
        course = cls()
        cursor = start
        for challenge in challenges:
            course.challenges.append(challenge.shifted(
                cursor - challenge.start))
            cursor = course.challenges[-1].end + gap
        return course

    @property
    def end(self) -> float:
        return self.challenges[-1].end if self.challenges else 0.0

    def challenge_at(self, t: float) -> Optional[Challenge]:
        for challenge in self.challenges:
            if challenge.start <= t < challenge.end:
                return challenge
        return None

    def obstacle_at(self, t: float) -> Optional[Obstacle]:
        challenge = self.challenge_at(t)
        return challenge.obstacle_at(t) if challenge else None

    def target_fn(self, default: float = 0.0) -> Callable[[float], float]:
        """Map time -> corridor midpoint (for tracking analysis)."""

        def fn(t: float) -> float:
            obstacle = self.obstacle_at(t)
            return obstacle.target if obstacle else default

        return fn
