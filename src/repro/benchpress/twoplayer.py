"""Two-player mode (paper §4.3).

"The two-player version of the game allows the players to experience in
real-time the effects of multi-tenancy, with one player affecting the
other."  Both players run their own workload/tenant against the *same*
database instance; the shared load tracker makes each player's requested
throughput degrade the other's delivered throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..api.control import ControlApi
from ..clock import SimClock
from ..core.config import WorkloadConfiguration
from ..core.executors import SimulatedExecutor
from ..core.manager import WorkloadManager
from ..engine.database import Database
from ..engine.service import DbmsPersonality
from .challenges import Course
from .game import GameSession
from .physics import Character
from .pilots import Pilot


@dataclass
class PlayerSpec:
    """One player's setup: benchmark, config, course, and pilot."""

    benchmark: object  # a loaded BenchmarkModule
    config: WorkloadConfiguration
    course: Course
    pilot: Optional[Pilot] = None
    character: Optional[Character] = None


class TwoPlayerGame:
    """Runs two game sessions against one shared simulated DBMS."""

    def __init__(self, database: Database,
                 personality: DbmsPersonality | str = "mysql") -> None:
        self.database = database
        self.clock = SimClock()
        self.executor = SimulatedExecutor(database, personality, self.clock)
        self.control = ControlApi()
        self.sessions: list[GameSession] = []

    def add_player(self, spec: PlayerSpec) -> GameSession:
        if len(self.sessions) >= 2:
            raise ValueError("two-player game already has two players")
        spec.config.tenant = spec.config.tenant or \
            f"player-{len(self.sessions) + 1}"
        manager = WorkloadManager(spec.benchmark, spec.config,
                                  clock=self.clock)
        self.executor.add_workload(manager)
        self.control.register(manager)
        session = GameSession(
            self.control, spec.config.tenant, spec.course,
            character=spec.character, pilot=spec.pilot,
            halt_on_crash=False)  # a crash must not stop the rival's DBMS
        self.sessions.append(session)
        return session

    def run(self, tick: float = 1.0, until: Optional[float] = None) -> None:
        if len(self.sessions) != 2:
            raise ValueError("two players are required")
        for session in self.sessions:
            session.run_on(self.executor, tick=tick)
        horizon = until if until is not None else max(
            s.course.end for s in self.sessions) + 5.0
        self.executor.run(until=horizon)

    def summaries(self) -> list[dict]:
        return [session.summary() for session in self.sessions]
