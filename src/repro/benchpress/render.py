"""ASCII rendering of the side-scroller, replacing the browser canvas.

Frames show a time window of the course with pipe obstacles (``|`` walls,
the opening being the corridor) and the character ``@`` at its measured
altitude; ``+`` marks the requested rate when it differs visibly.
"""

from __future__ import annotations

from typing import Optional

from .challenges import Course
from .game import GameSession


def render_frame(session: GameSession, now: float, width: int = 64,
                 height: int = 16, horizon: float = 32.0) -> str:
    """Render the next ``horizon`` seconds of course as ASCII art."""
    course = session.course
    max_alt = _max_altitude(course, session)
    grid = [[" "] * width for _ in range(height)]

    for column in range(width):
        t = now + (column / width) * horizon
        obstacle = course.obstacle_at(t)
        if obstacle is None:
            continue
        low_row = _row_for(obstacle.low, max_alt, height)
        high_row = _row_for(obstacle.high, max_alt, height)
        for row in range(height):
            if row > low_row or row < high_row:
                grid[row][column] = "|"

    char_row = _row_for(session.character.altitude, max_alt, height)
    grid[char_row][0] = "@"
    req_row = _row_for(session.character.requested_rate, max_alt, height)
    if req_row != char_row and grid[req_row][0] == " ":
        grid[req_row][0] = "+"

    lines = ["".join(row) for row in grid]
    footer = (f"t={now:7.1f}s alt={session.character.altitude:8.1f} "
              f"req={session.character.requested_rate:8.1f} "
              f"score={session.score:6.1f} [{session.state}]")
    return "\n".join(lines + ["-" * width, footer])


def _max_altitude(course: Course, session: GameSession) -> float:
    tops = [o.high for c in course.challenges for o in c.obstacles]
    ceiling = max(tops) if tops else 100.0
    return max(ceiling * 1.2, session.character.altitude * 1.1, 1.0)


def _row_for(altitude: float, max_alt: float, height: int) -> int:
    fraction = min(1.0, max(0.0, altitude / max_alt))
    return min(height - 1, int(round((1.0 - fraction) * (height - 1))))
