"""Character physics (paper §4.1).

The character's vertical position *is* the DBMS's delivered throughput —
the player only controls the *requested* rate.  Two forces act on the
requested rate:

* **jump** — the player asks for a higher target ("a jump requests a
  higher throughput rate and makes the game character move upwards");
* **gravity** — with no input, "the throughput automatically decreases
  linearly until reaching 0 transactions per second, at which point the
  character falls on the floor."

The gap between requested and delivered altitude is the game's core
insight: "the movement of the character however only reflects the actual
throughput delivered by the DBMS rather than the requested one."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Character:
    """The player avatar: requested rate + measured altitude."""

    requested_rate: float = 0.0
    altitude: float = 0.0  # delivered throughput, set from measurements
    gravity: float = 10.0  # tps lost per second without input
    jump_boost: float = 20.0  # tps gained per jump press
    max_rate: float = 100_000.0
    grounded: bool = True
    _input_this_tick: bool = field(default=False, repr=False)

    # -- player input -----------------------------------------------------

    def jump(self, boost: float | None = None) -> float:
        """Request a higher throughput; returns the new requested rate."""
        self.requested_rate = min(
            self.max_rate,
            self.requested_rate + (boost if boost is not None
                                   else self.jump_boost))
        self.grounded = False
        self._input_this_tick = True
        return self.requested_rate

    def duck(self, drop: float | None = None) -> float:
        """Manually decrease the target (the alternative setup of §4.1)."""
        self.requested_rate = max(
            0.0, self.requested_rate - (drop if drop is not None
                                        else self.jump_boost))
        self._input_this_tick = True
        return self.requested_rate

    def set_requested(self, rate: float) -> float:
        self.requested_rate = max(0.0, min(self.max_rate, rate))
        self.grounded = self.requested_rate == 0.0
        self._input_this_tick = True
        return self.requested_rate

    # -- simulation -----------------------------------------------------------

    def apply_gravity(self, dt: float) -> float:
        """Linear decay of the requested rate when no input arrived."""
        if not self._input_this_tick:
            self.requested_rate = max(
                0.0, self.requested_rate - self.gravity * dt)
            if self.requested_rate == 0.0:
                self.grounded = True
        self._input_this_tick = False
        return self.requested_rate

    def observe(self, delivered_tps: float) -> float:
        """Move the character to the *measured* throughput."""
        self.altitude = max(0.0, delivered_tps)
        return self.altitude

    @property
    def falling_short(self) -> float:
        """How far delivery lags the request (DBMS can't keep up)."""
        return max(0.0, self.requested_rate - self.altitude)
