"""BenchPress: the game layer over OLTP-Bench (paper §4)."""

from .challenges import (Challenge, Course, Obstacle, challenge_from_config,
                         peak, sinusoidal, steps, tunnel)
from .game import (GameSession, STATE_COMPLETED, STATE_CRASHED,
                   STATE_READY, STATE_RUNNING)
from .physics import Character
from .pilots import (AdaptivePilot, GreedyPilot, NoInputPilot,
                     PerfectPilot, Pilot, ScriptedPilot)
from .render import render_frame
from .twoplayer import PlayerSpec, TwoPlayerGame

__all__ = [
    "Challenge", "Course", "Obstacle", "challenge_from_config",
    "peak", "sinusoidal", "steps", "tunnel",
    "GameSession", "STATE_COMPLETED", "STATE_CRASHED", "STATE_READY",
    "STATE_RUNNING", "Character",
    "AdaptivePilot", "GreedyPilot", "NoInputPilot", "PerfectPilot",
    "Pilot", "ScriptedPilot",
    "render_frame", "PlayerSpec", "TwoPlayerGame",
]
