"""Benchmark module base class and loader utilities.

A :class:`BenchmarkModule` bundles everything OLTP-Bench knows about one
workload: the schema DDL, the data loader, the transaction procedures with
their default mixture, and the preset mixtures the BenchPress game exposes
(default / read-only / super-writes, paper Fig. 2d).
"""

from __future__ import annotations

import random
from typing import ClassVar, Mapping, Optional, Sequence, Type

from ..engine.database import Database
from ..errors import BenchmarkError, ConfigurationError
from ..rand import make_rng
from .phase import normalize_weights
from .procedure import Procedure

CLASS_TRANSACTIONAL = "Transactional"
CLASS_WEB = "Web-Oriented"
CLASS_FEATURE = "Feature Testing"


class BenchmarkModule:
    """Base class every built-in benchmark extends."""

    #: Registry key, e.g. ``"tpcc"``.
    name: ClassVar[str] = ""
    #: Human-readable application domain (paper Table 1).
    domain: ClassVar[str] = ""
    #: One of the three classes in paper Table 1.
    benchmark_class: ClassVar[str] = CLASS_TRANSACTIONAL
    #: Procedure classes in mixture order.
    procedures: ClassVar[Sequence[Type[Procedure]]] = ()

    def __init__(self, database: Database, scale_factor: float = 1.0,
                 seed: Optional[int] = None) -> None:
        if scale_factor <= 0:
            raise ConfigurationError("scale_factor must be positive")
        self.database = database
        self.scale_factor = scale_factor
        self.seed = seed
        #: Loader-derived parameters passed to every procedure instance
        #: (e.g. number of warehouses, accounts, users).
        self.params: dict[str, object] = {}
        self._loaded = False
        self._procedure_classes = {proc.txn_name(): proc
                                   for proc in self.procedures}
        self._procedure_cache: dict[str, Procedure] = {}

    # -- hooks subclasses implement ------------------------------------------

    def ddl(self) -> Sequence[str]:
        """CREATE TABLE / CREATE INDEX statements, in execution order."""
        raise NotImplementedError

    def load_data(self, rng: random.Random) -> None:
        """Populate tables (typically via ``database.bulk_insert``)."""
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------------

    def create_schema(self) -> None:
        for statement in self.ddl():
            self.database.execute(None, statement)

    def load(self) -> None:
        """Create the schema and load the dataset for this scale factor."""
        self.create_schema()
        self.load_data(make_rng(self.seed, self.name, "load"))
        self._loaded = True

    @property
    def loaded(self) -> bool:
        return self._loaded

    # -- dump/restore support -------------------------------------------------

    def scalar(self, sql: str, params=()) -> object:
        """Run a single-value query outside any workload transaction."""
        txn = self.database.begin()
        try:
            rows = self.database.execute(txn, sql, params).rows
            return rows[0][0] if rows else None
        finally:
            self.database.rollback(txn)

    def derive_params(self) -> None:
        """Recompute ``self.params`` from already-present data.

        Called instead of :meth:`load` when the database was populated from
        a data dump (Fig. 1 "Data Dumps"): row counts and id counters are
        re-derived with catalog queries.  Subclasses override
        :meth:`_derive_params`.
        """
        self._derive_params()
        self._loaded = True

    def _derive_params(self) -> None:
        raise BenchmarkError(
            f"benchmark {self.name!r} does not support restoring from "
            "a data dump")

    # -- procedures / mixtures -------------------------------------------------

    def procedure_names(self) -> list[str]:
        return [proc.txn_name() for proc in self.procedures]

    def make_procedure(self, txn_name: str) -> Procedure:
        # Dict dispatch + instance reuse: this runs once per executed
        # transaction, so both a linear scan over the procedure classes
        # and a fresh instantiation per call are measurable hot-path
        # overhead at driver-capacity rates.  ``params`` is only ever
        # mutated in place, so cached instances observe loader updates.
        proc = self._procedure_cache.get(txn_name)
        if proc is not None:
            return proc
        proc_cls = self._procedure_classes.get(txn_name)
        if proc_cls is None:
            raise BenchmarkError(
                f"benchmark {self.name!r} has no transaction {txn_name!r}")
        proc = proc_cls(self.params)
        if proc_cls.reusable:
            self._procedure_cache[txn_name] = proc
        return proc

    def default_weights(self) -> dict[str, float]:
        weights = {proc.txn_name(): proc.default_weight
                   for proc in self.procedures}
        if sum(weights.values()) <= 0:
            count = len(self.procedures)
            weights = {proc.txn_name(): 100.0 / count
                       for proc in self.procedures}
        return normalize_weights(weights)

    def preset_mixtures(self) -> dict[str, dict[str, float]]:
        """The game's preset mixtures (paper Fig. 2d).

        ``read-only`` keeps only read-only transactions; ``super-writes``
        inverts that.  A benchmark with no transaction on one side keeps
        the default mixture for that preset.
        """
        defaults = self.default_weights()
        reads = {name: weight for name, weight in defaults.items()
                 if self._is_read_only(name)}
        writes = {name: weight for name, weight in defaults.items()
                  if not self._is_read_only(name)}
        presets = {"default": defaults}
        presets["read-only"] = (normalize_weights(reads) if reads
                                else dict(defaults))
        presets["super-writes"] = (normalize_weights(writes) if writes
                                   else dict(defaults))
        return presets

    def _is_read_only(self, txn_name: str) -> bool:
        for proc_cls in self.procedures:
            if proc_cls.txn_name() == txn_name:
                return proc_cls.read_only
        raise BenchmarkError(f"unknown transaction {txn_name!r}")

    # -- reporting ---------------------------------------------------------------

    def table_counts(self) -> dict[str, int]:
        return {table: self.database.row_count(table)
                for table in self.database.table_names()}

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "class": self.benchmark_class,
            "domain": self.domain,
            "transactions": self.procedure_names(),
            "default_weights": self.default_weights(),
        }
