"""The centralized request queue at the heart of OLTP-Bench rate control.

Paper §2.2.1: "the runtime throughput is controlled through the Workload
Manager's request queue... Using a centralized queue allows us to control
the throughput from one location without needing to coordinate the multiple
threads.  The exact number of requests configured is added to the queue
each second... When the workers cannot keep up with all requests, the
remainder is postponed in such a way that the framework never exceeds the
target rate."

Two backlog policies are implemented (the postponement ablation):

* ``cap`` (default, OLTP-Bench behaviour) — when a new one-second batch is
  offered, still-unserved requests from earlier seconds are shed and
  counted as *postponed*.  Workers can therefore never drain a backlog
  burst, so delivered throughput never exceeds the target rate.
* ``backlog`` — requests are never shed; after a stall, workers catch up in
  a burst that overshoots the target (the behaviour the paper's design
  avoids).

A request may also never be taken before its scheduled arrival timestamp;
this is what spreads execution uniformly/exponentially within each second.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..clock import Clock, RealClock
from ..errors import ConfigurationError

POLICY_CAP = "cap"
POLICY_BACKLOG = "backlog"


@dataclass(frozen=True)
class Request:
    """One unit of work: execute a transaction sampled from the mixture."""

    arrival_time: float
    seq: int


class RequestQueue:
    """Thread-safe central queue with scheduled arrival times."""

    def __init__(self, clock: Optional[Clock] = None,
                 policy: str = POLICY_CAP) -> None:
        if policy not in (POLICY_CAP, POLICY_BACKLOG):
            raise ConfigurationError(f"unknown queue policy {policy!r}")
        self.policy = policy
        self.clock = clock or RealClock()
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._queue: deque[Request] = deque()
        self._seq = 0
        self._paused = False
        self._shutdown = False
        self.offered = 0
        self.taken = 0
        self.postponed = 0

    # -- producer side (Workload Manager) ----------------------------------

    def offer_batch(self, arrivals: list[float]) -> int:
        """Add one second's worth of requests; returns number postponed.

        Under the ``cap`` policy, requests from previous batches that are
        already past their arrival time but unserved are shed first.
        """
        with self._not_empty:
            shed = 0
            if self.policy == POLICY_CAP and arrivals:
                batch_start = arrivals[0]
                while self._queue and self._queue[0].arrival_time < batch_start:
                    self._queue.popleft()
                    shed += 1
            for when in arrivals:
                self._seq += 1
                self._queue.append(Request(when, self._seq))
            self.offered += len(arrivals)
            self.postponed += shed
            if arrivals:
                self._not_empty.notify_all()
            return shed

    def clear(self) -> int:
        """Drop all pending requests (phase transition with rate change).

        The dropped requests were offered but will never be delivered, so
        they count as postponed — otherwise offered/taken/postponed
        accounting silently drifts on every rate-changing transition.
        Blocked :meth:`take` callers are woken so they re-check state
        instead of sleeping until a cleared request's arrival time.
        """
        with self._not_empty:
            dropped = len(self._queue)
            self._queue.clear()
            self.postponed += dropped
            if dropped:
                self._not_empty.notify_all()
            return dropped

    def drop_due(self, now: float) -> int:
        """Shed every request whose arrival time has come (breaker open).

        The dropped requests were offered but deliberately not delivered,
        so they count as postponed — load shedding therefore preserves
        ``offered == taken + postponed + depth`` exactly like a phase
        transition's :meth:`clear`.
        """
        with self._not_empty:
            dropped = 0
            while self._queue and self._queue[0].arrival_time <= now:
                self._queue.popleft()
                dropped += 1
            self.postponed += dropped
            return dropped

    def counters(self) -> dict[str, int]:
        """Consistent snapshot of the requested-vs-delivered accounting."""
        with self._mutex:
            return {
                "offered": self.offered,
                "taken": self.taken,
                "postponed": self.postponed,
                "depth": len(self._queue),
            }

    # -- consumer side (workers) -----------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Request]:
        """Pop the next request whose arrival time has come.

        Blocks while the queue is empty, paused, or the head request's
        arrival time is in the future.  Returns ``None`` on shutdown or
        timeout.  Only meaningful with a real clock; the simulated executor
        uses :meth:`poll` instead.
        """
        deadline = (self.clock.now() + timeout) if timeout is not None else None
        with self._not_empty:
            while True:
                if self._shutdown:
                    return None
                now = self.clock.now()
                wait: Optional[float] = None
                if not self._paused and self._queue:
                    head = self._queue[0]
                    if head.arrival_time <= now:
                        self._queue.popleft()
                        self.taken += 1
                        return head
                    wait = head.arrival_time - now
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._not_empty.wait(wait)

    def poll(self, now: float) -> Optional[Request]:
        """Non-blocking take for the simulated executor."""
        with self._not_empty:
            if self._shutdown or self._paused or not self._queue:
                return None
            head = self._queue[0]
            if head.arrival_time > now:
                return None
            self._queue.popleft()
            self.taken += 1
            return head

    def next_arrival(self) -> Optional[float]:
        with self._mutex:
            return self._queue[0].arrival_time if self._queue else None

    # -- control -------------------------------------------------------------

    def pause(self) -> None:
        """Block workers from pulling (the game's mixture-dialog pause)."""
        with self._not_empty:
            self._paused = True

    def resume(self) -> None:
        with self._not_empty:
            self._paused = False
            self._not_empty.notify_all()

    @property
    def paused(self) -> bool:
        return self._paused

    def shutdown(self) -> None:
        with self._not_empty:
            self._shutdown = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._queue)
