"""The centralized request queue at the heart of OLTP-Bench rate control.

Paper §2.2.1: "the runtime throughput is controlled through the Workload
Manager's request queue... Using a centralized queue allows us to control
the throughput from one location without needing to coordinate the multiple
threads.  The exact number of requests configured is added to the queue
each second... When the workers cannot keep up with all requests, the
remainder is postponed in such a way that the framework never exceeds the
target rate."

Two backlog policies are implemented (the postponement ablation):

* ``cap`` (default, OLTP-Bench behaviour) — when a new one-second batch is
  offered, still-unserved requests from earlier seconds are shed and
  counted as *postponed*.  Workers can therefore never drain a backlog
  burst, so delivered throughput never exceeds the target rate.
* ``backlog`` — requests are never shed; after a stall, workers catch up in
  a burst that overshoots the target (the behaviour the paper's design
  avoids).

A request may also never be taken before its scheduled arrival timestamp;
this is what spreads execution uniformly/exponentially within each second.

Sharding
--------

The queue is *logically* centralized (one accounting domain, one control
surface) but *physically* sharded: requests are distributed round-robin by
sequence number over N per-shard deques, each behind its own lock, so at
high target rates producers and consumers stop serializing on a single
mutex.  The shard count comes from the ``shards`` argument or the
``REPRO_QUEUE_SHARDS`` environment variable (default 1, the paper-faithful
layout).  Because assignment is round-robin over globally arrival-sorted
batches, every shard's deque stays sorted by arrival time, and cap-policy
shedding per shard removes exactly the same request set a single deque
would — the global invariant

    offered == taken + postponed + depth

holds for any shard count, and the postponement counts are *identical* to
the single-queue layout on the same schedule (proved by the equivalence
oracle in ``benchmarks/bench_queue_scaling.py``).

Wakeup discipline: blocking takers synchronize on one condition variable
(``_not_empty``) guarded by a generation counter — producers bump the
generation and ``notify(len(batch))`` (proportional to the work added, not
``notify_all``), and a taker that scanned the shards re-checks the
generation before parking, so no wakeup is ever lost.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import ExitStack
from typing import Optional

from ..clock import Clock, RealClock
from ..errors import ConfigurationError

POLICY_CAP = "cap"
POLICY_BACKLOG = "backlog"

#: Environment override for the default shard count.
SHARDS_ENV = "REPRO_QUEUE_SHARDS"
_MAX_SHARDS = 64


def default_shards() -> int:
    """Shard count from ``REPRO_QUEUE_SHARDS`` (default 1)."""
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SHARDS_ENV} must be an integer, got {raw!r}") from None
    if not 1 <= value <= _MAX_SHARDS:
        raise ConfigurationError(
            f"{SHARDS_ENV} must be in [1, {_MAX_SHARDS}], got {value}")
    return value


class Request:
    """One unit of work: execute a transaction sampled from the mixture.

    A hand-rolled ``__slots__`` class: one instance is created per
    offered request, and at driver-capacity offer rates the frozen-
    dataclass constructor (``object.__setattr__`` per field) is
    measurable pacer-side overhead.
    """

    __slots__ = ("arrival_time", "seq")

    def __init__(self, arrival_time: float, seq: int) -> None:
        self.arrival_time = arrival_time
        self.seq = seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Request):
            return NotImplemented
        return (self.arrival_time, self.seq) == \
            (other.arrival_time, other.seq)

    def __hash__(self) -> int:
        return hash((self.arrival_time, self.seq))

    def __repr__(self) -> str:
        return f"Request(arrival_time={self.arrival_time!r}, " \
               f"seq={self.seq!r})"


class _Shard:
    """One lock-protected deque plus its slice of the accounting."""

    __slots__ = ("lock", "queue", "offered", "taken", "postponed")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.queue: deque[Request] = deque()
        self.offered = 0
        self.taken = 0
        self.postponed = 0


class RequestQueue:
    """Thread-safe central queue with scheduled arrival times."""

    def __init__(self, clock: Optional[Clock] = None,
                 policy: str = POLICY_CAP,
                 shards: Optional[int] = None) -> None:
        if policy not in (POLICY_CAP, POLICY_BACKLOG):
            raise ConfigurationError(f"unknown queue policy {policy!r}")
        if shards is None:
            shards = default_shards()
        if not 1 <= shards <= _MAX_SHARDS:
            raise ConfigurationError(
                f"shards must be in [1, {_MAX_SHARDS}], got {shards}")
        self.policy = policy
        self.clock = clock or RealClock()
        self.shards = shards
        self._shards = [_Shard() for _ in range(shards)]
        # Control state (pause/shutdown) and the taker parking lot.  The
        # generation counter increments on every event that could unblock
        # a taker; a taker re-checks it between scanning the shards and
        # parking, which closes the lost-wakeup window without requiring
        # producers to hold more than one lock at a time.
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._gen = 0
        self._seq = 0
        self._paused = False
        self._shutdown = False
        self._rotor = 0  # take_batch fairness: rotating start shard

    # -- producer side (Workload Manager) ----------------------------------

    def offer_batch(self, arrivals: list[float]) -> int:
        """Add one second's worth of requests; returns number postponed.

        Under the ``cap`` policy, requests from previous batches that are
        already past their arrival time but unserved are shed first.  The
        batch is partitioned round-robin across the shards and each shard
        is updated in a single lock acquisition — one pass per shard, no
        matter how large the second's batch is.
        """
        if not arrivals:
            return 0
        with self._mutex:
            base_seq = self._seq
            self._seq += len(arrivals)
        nshards = self.shards
        batch_start = arrivals[0]
        shed_cap = self.policy == POLICY_CAP
        total_shed = 0
        for index, shard in enumerate(self._shards):
            # Round-robin by global sequence number: request i of this
            # batch (seq base_seq + 1 + i) lands on shard (base_seq + i)
            # mod N, keeping every shard's deque sorted by arrival time.
            first = (index - base_seq) % nshards
            slice_ = [Request(arrivals[i], base_seq + 1 + i)
                      for i in range(first, len(arrivals), nshards)]
            with shard.lock:
                if shed_cap:
                    pending = shard.queue
                    while pending and \
                            pending[0].arrival_time < batch_start:
                        pending.popleft()
                        shard.postponed += 1
                        total_shed += 1
                if slice_:
                    shard.queue.extend(slice_)
                    shard.offered += len(slice_)
        with self._not_empty:
            self._gen += 1
            # Proportional wakeup: at most len(arrivals) takers can make
            # progress on this batch, so waking more only recreates the
            # notify_all thundering herd the shards exist to avoid.
            self._not_empty.notify(len(arrivals))
        return total_shed

    def clear(self) -> int:
        """Drop all pending requests (phase transition with rate change).

        The dropped requests were offered but will never be delivered, so
        they count as postponed — otherwise offered/taken/postponed
        accounting silently drifts on every rate-changing transition.
        Blocked :meth:`take` callers are woken so they re-check state
        instead of sleeping until a cleared request's arrival time.  All
        shard locks are held together so the drop is atomic against
        concurrent offers.
        """
        dropped = 0
        with ExitStack() as stack:
            # Shard locks nest in index order only (lockwatch-clean).
            for shard in self._shards:
                stack.enter_context(shard.lock)
            for shard in self._shards:
                count = len(shard.queue)
                shard.queue.clear()
                shard.postponed += count
                dropped += count
        if dropped:
            with self._not_empty:
                self._gen += 1
                self._not_empty.notify_all()
        return dropped

    def drop_due(self, now: float) -> int:
        """Shed every request whose arrival time has come (breaker open).

        The dropped requests were offered but deliberately not delivered,
        so they count as postponed — load shedding therefore preserves
        ``offered == taken + postponed + depth`` exactly like a phase
        transition's :meth:`clear`.
        """
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                pending = shard.queue
                while pending and pending[0].arrival_time <= now:
                    pending.popleft()
                    shard.postponed += 1
                    dropped += 1
        return dropped

    def counters(self) -> dict[str, int]:
        """Consistent snapshot of the requested-vs-delivered accounting.

        All shard locks are held together, so the four numbers always
        satisfy ``offered == taken + postponed + depth`` exactly.
        """
        with ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.lock)
            return {
                "offered": sum(s.offered for s in self._shards),
                "taken": sum(s.taken for s in self._shards),
                "postponed": sum(s.postponed for s in self._shards),
                "depth": sum(len(s.queue) for s in self._shards),
            }

    def shard_depths(self) -> list[int]:
        """Per-shard queue depths (metrics surfacing; racy but cheap)."""
        depths = []
        for shard in self._shards:
            with shard.lock:
                depths.append(len(shard.queue))
        return depths

    # -- aggregate counters (read as attributes by tests/reports) ----------

    @property
    def offered(self) -> int:
        return sum(s.offered for s in self._shards)

    @property
    def taken(self) -> int:
        return sum(s.taken for s in self._shards)

    @property
    def postponed(self) -> int:
        return sum(s.postponed for s in self._shards)

    # -- consumer side (workers) -----------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Request]:
        """Pop the next request whose arrival time has come.

        Blocks while the queue is empty, paused, or the head request's
        arrival time is in the future.  Returns ``None`` on shutdown or
        timeout.  Only meaningful with a real clock; the simulated executor
        uses :meth:`poll` instead.
        """
        batch = self.take_batch(1, timeout=timeout)
        return batch[0] if batch else None

    def take_batch(self, max_n: int,
                   timeout: Optional[float] = None) -> list[Request]:
        """Pop up to ``max_n`` due requests in one pass, arrival-ordered.

        The hot path of the batched driver: a worker drains whole runs of
        due requests with one lock acquisition per visited shard instead
        of one condition-variable dance per request.  Blocks (like
        :meth:`take`) until at least one request is due; returns ``[]`` on
        shutdown or timeout.  The returned batch is sorted by arrival
        time; the scan start rotates across shards for fairness.
        """
        if max_n <= 0:
            raise ConfigurationError("take_batch max_n must be positive")
        deadline = (self.clock.now() + timeout) if timeout is not None \
            else None
        while True:
            with self._not_empty:
                if self._shutdown:
                    return []
                gen = self._gen
                paused = self._paused
            next_arrival: Optional[float] = None
            if not paused:
                now = self.clock.now()
                batch, next_arrival = self._pop_due(now, max_n)
                if batch:
                    if len(batch) > 1:
                        batch.sort(key=lambda r: r.arrival_time)
                    return batch
            now = self.clock.now()
            wait: Optional[float] = None
            if next_arrival is not None:
                wait = max(0.0, next_arrival - now)
            if deadline is not None:
                remaining = deadline - now
                if remaining <= 0:
                    return []
                wait = remaining if wait is None else min(wait, remaining)
            with self._not_empty:
                if self._shutdown:
                    return []
                if self._gen != gen:
                    continue  # state changed since the scan: rescan
                self._not_empty.wait(wait)

    def _pop_due(self, now: float,
                 max_n: int) -> tuple[list[Request], Optional[float]]:
        """Drain up to ``max_n`` due requests; also report next arrival.

        Visits shards starting at a rotating index so single-request
        takers don't all hammer shard 0.  Returns the popped batch and
        the earliest future arrival seen (for the caller's park timeout).
        """
        batch: list[Request] = []
        next_arrival: Optional[float] = None
        nshards = self.shards
        start = self._rotor
        self._rotor = (start + 1) % nshards
        for step in range(nshards):
            shard = self._shards[(start + step) % nshards]
            with shard.lock:
                pending = shard.queue
                while pending and len(batch) < max_n:
                    head = pending[0]
                    if head.arrival_time > now:
                        break
                    pending.popleft()
                    shard.taken += 1
                    batch.append(head)
                if pending:
                    head_time = pending[0].arrival_time
                    if head_time > now and (next_arrival is None
                                            or head_time < next_arrival):
                        next_arrival = head_time
            if len(batch) >= max_n:
                break
        return batch, next_arrival

    def poll(self, now: float) -> Optional[Request]:
        """Non-blocking take of the globally earliest due request.

        Deterministic across shard counts (used by the simulated
        executor): scans every shard head and pops the minimum arrival,
        exactly what a single deque's head would be.
        """
        with self._not_empty:
            if self._shutdown or self._paused:
                return None
        best: Optional[_Shard] = None
        best_key: Optional[tuple[float, int]] = None
        for shard in self._shards:
            with shard.lock:
                if shard.queue:
                    head = shard.queue[0]
                    if head.arrival_time <= now:
                        # Tie-break equal arrivals by sequence number so
                        # pop order matches the single-deque layout.
                        key = (head.arrival_time, head.seq)
                        if best_key is None or key < best_key:
                            best, best_key = shard, key
        if best is None:
            return None
        with best.lock:
            if best.queue and best.queue[0].arrival_time <= now:
                best.taken += 1
                return best.queue.popleft()
        return None

    def next_arrival(self) -> Optional[float]:
        earliest: Optional[float] = None
        for shard in self._shards:
            with shard.lock:
                if shard.queue:
                    head_time = shard.queue[0].arrival_time
                    if earliest is None or head_time < earliest:
                        earliest = head_time
        return earliest

    # -- control -------------------------------------------------------------

    def pause(self) -> None:
        """Block workers from pulling (the game's mixture-dialog pause)."""
        with self._not_empty:
            self._paused = True
            self._gen += 1

    def resume(self) -> None:
        with self._not_empty:
            self._paused = False
            self._gen += 1
            self._not_empty.notify_all()

    @property
    def paused(self) -> bool:
        return self._paused

    def shutdown(self) -> None:
        with self._not_empty:
            self._shutdown = True
            self._gen += 1
            self._not_empty.notify_all()

    def __len__(self) -> int:
        return sum(self.shard_depths())
