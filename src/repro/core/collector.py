"""Rolling statistics for instantaneous feedback (paper §2.2.4).

The control API reports "instantaneous feedback about the current execution
throughput and average latency per transaction type".  The collector keeps
per-second ring buckets so those queries are O(window) regardless of run
length, unlike the full :class:`~repro.core.results.Results` history.

The live feedback path now flows through :class:`~repro.metrics.
StreamingMetrics` (which adds latency histograms and queue accounting);
this standalone collector remains for ad-hoc per-second bookkeeping.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class _Bucket:
    second: int
    committed: int = 0
    aborted: int = 0
    errors: int = 0
    latency_sum: float = 0.0
    per_txn: dict[str, list] = field(default_factory=dict)  # name -> [n, sum]

    def add(self, txn_name: str, latency: float, status: str) -> None:
        if status == "ok":
            self.committed += 1
            self.latency_sum += latency
            entry = self.per_txn.setdefault(txn_name, [0, 0.0])
            entry[0] += 1
            entry[1] += latency
        elif status == "aborted":
            self.aborted += 1
        else:
            self.errors += 1


class StatisticsCollector:
    """Fixed-size ring of per-second statistics buckets."""

    def __init__(self, history_seconds: int = 300) -> None:
        self.history_seconds = history_seconds
        self._lock = threading.Lock()
        self._buckets: dict[int, _Bucket] = {}

    def record(self, end_time: float, txn_name: str, latency: float,
               status: str) -> None:
        second = math.floor(end_time)  # floor: negative virtual times too
        with self._lock:
            bucket = self._buckets.get(second)
            if bucket is None:
                bucket = _Bucket(second)
                self._buckets[second] = bucket
                self._evict(second)
            bucket.add(txn_name, latency, status)

    def _evict(self, newest: int) -> None:
        horizon = newest - self.history_seconds
        for second in [s for s in self._buckets if s < horizon]:
            del self._buckets[second]

    # -- queries ------------------------------------------------------------

    def instantaneous(self, now: float, window: float = 5.0) -> dict:
        """Throughput and per-type average latency over the last window.

        The current (incomplete) second is excluded so throughput is not
        systematically under-reported mid-second.
        """
        current = math.floor(now)
        lo = current - int(window)
        with self._lock:
            chosen = [b for s, b in self._buckets.items()
                      if lo <= s < current]
        seconds = max(1, int(window))
        committed = sum(b.committed for b in chosen)
        aborted = sum(b.aborted for b in chosen)
        per_txn: dict[str, dict[str, float]] = {}
        totals: dict[str, list] = {}
        for bucket in chosen:
            for name, (count, total) in bucket.per_txn.items():
                entry = totals.setdefault(name, [0, 0.0])
                entry[0] += count
                entry[1] += total
        for name, (count, total) in totals.items():
            per_txn[name] = {
                "throughput": count / seconds,
                "avg_latency": total / count if count else 0.0,
            }
        total_latency = sum(b.latency_sum for b in chosen)
        return {
            "throughput": committed / seconds,
            "aborts_per_sec": aborted / seconds,
            "avg_latency": total_latency / committed if committed else 0.0,
            "per_txn": per_txn,
        }

    def throughput_series(self, start: Optional[int] = None,
                          end: Optional[int] = None) -> list[tuple[int, int]]:
        with self._lock:
            items = sorted(self._buckets.items())
        series = []
        for second, bucket in items:
            if start is not None and second < start:
                continue
            if end is not None and second >= end:
                continue
            series.append((second, bucket.committed))
        return series

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()
