"""Transaction procedure base class.

A procedure is OLTP-Bench's "transaction control code": program logic with
parameterised queries that either commits or aborts (paper §2.1).  Each
benchmark declares a set of Procedure subclasses; workers sample one from
the current mixture, instantiate it, and call :meth:`run` with a DB-API
connection.

Conventions:

* ``name`` — the mixture key (defaults to the class name);
* ``read_only`` — used by the preset mixtures (read-only boosts throughput
  by avoiding write locks, paper §4.1.1);
* :meth:`run` must leave the transaction committed on success and may raise
  :class:`~repro.errors.TransactionAborted` (or trigger one from the
  engine) — the worker rolls back and records the abort;
* procedures may raise :class:`UserAbort` for intentional benchmark-logic
  aborts (e.g. TPC-C NewOrder's 1% invalid item).
"""

from __future__ import annotations

import random
from typing import ClassVar, Mapping

from ..engine.dbapi import Connection
from ..errors import TransactionAborted


class UserAbort(TransactionAborted):
    """A benchmark-intended abort (counted separately from conflicts)."""


class Procedure:
    """Base class for benchmark transactions."""

    #: Mixture key; subclasses may override (defaults to the class name).
    name: ClassVar[str] = ""
    #: True when the transaction performs no writes.
    read_only: ClassVar[bool] = False
    #: Default mixture weight (percent) used when a phase omits weights.
    default_weight: ClassVar[float] = 0.0
    #: Stateless procedures (all of this repo's: ``run`` touches only its
    #: arguments and the read-only ``params``) are instantiated once per
    #: benchmark and reused across workers.  Subclasses that keep mutable
    #: per-instance state must set this False to get a fresh instance per
    #: executed transaction.
    reusable: ClassVar[bool] = True

    def __init__(self, params: Mapping[str, object]) -> None:
        #: Loader-derived benchmark parameters (e.g. warehouse count).
        self.params = params

    @classmethod
    def txn_name(cls) -> str:
        return cls.name or cls.__name__

    def run(self, conn: Connection, rng: random.Random) -> object:
        """Execute the transaction; commit before returning."""
        raise NotImplementedError

    # -- helpers shared by implementations ----------------------------------

    @staticmethod
    def fetch_one(cursor, error: str):
        """Fetch exactly one row or abort the transaction."""
        row = cursor.fetchone()
        if row is None:
            raise UserAbort(error)
        return row
