"""The Workload Manager: centralized control of rate, mixture, and phases.

Paper §2.1: "OLTP-Bench's client-side component contains a centralized
Workload Manager that is responsible for tightly controlling the
characteristics of the workload via a centralized request queue."

The manager owns the phase schedule and the request queue.  An *executor*
(threaded or simulated, see ``repro.core.executors``) drives it by calling
:meth:`tick` at every second boundary; workers consume the queue and call
:meth:`sample_txn_name` / :meth:`record`.

All control operations (:meth:`set_rate`, :meth:`set_weights`,
:meth:`pause`, ...) are thread-safe and take effect immediately — they are
what the REST control API and the BenchPress game invoke at runtime.
Dynamic overrides last until the next phase transition, which restores the
phase's configured parameters.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Mapping, Optional

from ..clock import Clock, RealClock
from ..errors import ConfigurationError
from ..faults import FaultInjector, FaultProfile, default_profile
from ..rand import DiscreteDistribution, make_rng
from .benchmark import BenchmarkModule
from .config import WorkloadConfiguration
from .phase import Phase, RATE_DISABLED, RATE_UNLIMITED
from .rates import ArrivalSchedule
from .requestqueue import POLICY_CAP, RequestQueue
from .resilience import Resilience
from .results import LatencySample, Results

STATE_CREATED = "created"
STATE_RUNNING = "running"
STATE_FINISHED = "finished"
STATE_STOPPED = "stopped"


class WorkloadManager:
    """Drives one workload (one tenant) against a database."""

    def __init__(self, benchmark: BenchmarkModule,
                 config: WorkloadConfiguration,
                 clock: Optional[Clock] = None,
                 results: Optional[Results] = None,
                 queue_policy: str = POLICY_CAP,
                 queue_shards: Optional[int] = None) -> None:
        if not config.phases:
            raise ConfigurationError("configuration has no phases")
        config.validated_against(benchmark.procedure_names())
        self.benchmark = benchmark
        self.config = config
        self.clock = clock or RealClock()
        self.queue = RequestQueue(clock=self.clock, policy=queue_policy,
                                  shards=queue_shards)
        self.results = results or Results()
        self.tenant = config.tenant

        self._lock = threading.RLock()
        self._state = STATE_CREATED
        self._phase_index = -1
        self._phase_started_at = 0.0
        self._run_started_at = 0.0
        self._rate_override: Optional[object] = None
        self._weights_override: Optional[dict[str, float]] = None
        self._think_override: Optional[float] = None
        self._active_workers_override: Optional[int] = None
        self._schedule: Optional[ArrivalSchedule] = None
        self._mixture: Optional[DiscreteDistribution] = None
        self._mixture_version = 0
        self._arrival_rng = make_rng(config.seed, "arrivals")
        self._paused = False
        #: Deterministic fault source (chaos, the fourth control verb).
        self.faults = FaultInjector(seed=config.seed, tenant=self.tenant,
                                    profile=default_profile())
        #: Retry policy + circuit breaker + resilience counters.
        self.resilience = Resilience(clock=self.clock)
        #: Executors register a callback fired after any control change so
        #: that event-driven executors can reschedule dispatches.
        self.on_control_change: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # lifecycle (called by executors)
    # ------------------------------------------------------------------

    def begin_run(self, now: float) -> None:
        with self._lock:
            if self._state != STATE_CREATED:
                raise ConfigurationError(
                    f"cannot start a manager in state {self._state!r}")
            self._state = STATE_RUNNING
            self._run_started_at = now
            self._enter_phase(0, now)

    def tick(self, now: float) -> Optional[list[float]]:
        """Advance phases and emit this second's arrival batch.

        Returns the arrival timestamps offered to the queue, an empty list
        for closed-loop phases, or ``None`` when the run has completed.
        """
        with self._lock:
            if self._state != STATE_RUNNING:
                return None
            phase = self.current_phase
            while now >= self._phase_started_at + phase.duration:
                if self._phase_index + 1 >= len(self.config.phases):
                    self._state = STATE_FINISHED
                    self.queue.shutdown()
                    return None
                self._enter_phase(
                    self._phase_index + 1,
                    self._phase_started_at + phase.duration)
                phase = self.current_phase
            if self.closed_loop:
                return []
            assert self._schedule is not None
            arrivals = self._schedule.batch(now)
            shed = self.queue.offer_batch(arrivals)
            if shed:
                self.results.record_postponed(shed)
            return arrivals

    def stop(self) -> None:
        with self._lock:
            if self._state in (STATE_RUNNING, STATE_CREATED):
                self._state = STATE_STOPPED
            self.queue.shutdown()
        self._notify()

    def _enter_phase(self, index: int, started_at: float) -> None:
        previous_rate = self.current_rate() if self._phase_index >= 0 \
            else None
        self._phase_index = index
        self._phase_started_at = started_at
        self._rate_override = None
        self._weights_override = None
        self._think_override = None
        self._active_workers_override = None
        if (previous_rate is not None
                and self.current_phase.rate != previous_rate
                and self.queue.policy == POLICY_CAP):
            # A rate-changing transition invalidates the old rate's
            # pending arrivals; shed them *and* count them, so
            # offered == taken + postponed + depth holds across phases.
            dropped = self.queue.clear()
            if dropped:
                self.results.record_postponed(dropped)
        self._rebuild_schedule()
        self._rebuild_mixture()

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def running(self) -> bool:
        return self._state == STATE_RUNNING

    @property
    def finished(self) -> bool:
        return self._state in (STATE_FINISHED, STATE_STOPPED)

    @property
    def current_phase(self) -> Phase:
        with self._lock:
            index = max(self._phase_index, 0)
            return self.config.phases[index]

    @property
    def phase_index(self) -> int:
        return self._phase_index

    def current_rate(self) -> object:
        with self._lock:
            if self._rate_override is not None:
                return self._rate_override
            return self.current_phase.rate

    def current_weights(self) -> dict[str, float]:
        with self._lock:
            if self._weights_override is not None:
                return dict(self._weights_override)
            weights = dict(self.current_phase.weights)
            if not weights:
                weights = self.benchmark.default_weights()
            return weights

    def current_think_time(self) -> float:
        with self._lock:
            if self._think_override is not None:
                return self._think_override
            return self.current_phase.think_time

    def current_active_workers(self) -> Optional[int]:
        with self._lock:
            if self._active_workers_override is not None:
                return self._active_workers_override
            return self.current_phase.active_workers

    def worker_enabled(self, worker_id: int) -> bool:
        """Whether this worker participates in the current phase.

        OLTP-Bench's ``<active_terminals>``: only the first N configured
        workers execute; the rest idle until a later phase (or a dynamic
        override) re-enables them.
        """
        active = self.current_active_workers()
        return active is None or worker_id < active

    @property
    def closed_loop(self) -> bool:
        return self.current_rate() == RATE_DISABLED

    @property
    def paused(self) -> bool:
        return self._paused

    # ------------------------------------------------------------------
    # runtime control (REST API / game surface)
    # ------------------------------------------------------------------

    def set_rate(self, rate: object) -> None:
        """Throttle or open up the request rate immediately."""
        Phase._validate_rate(rate)
        with self._lock:
            self._rate_override = rate
            self._rebuild_schedule()
        self._notify()

    def set_weights(self, weights: Mapping[str, float]) -> None:
        """Change the transaction mixture on demand (paper §2.2.2)."""
        unknown = set(weights) - set(self.benchmark.procedure_names())
        if unknown:
            raise ConfigurationError(
                f"unknown transactions in mixture: {sorted(unknown)}")
        if not weights or sum(weights.values()) <= 0:
            raise ConfigurationError("mixture weights must sum > 0")
        with self._lock:
            self._weights_override = dict(weights)
            self._rebuild_mixture()
        self._notify()

    def set_preset_mixture(self, preset: str) -> None:
        presets = self.benchmark.preset_mixtures()
        if preset not in presets:
            raise ConfigurationError(
                f"unknown preset {preset!r}; available: {sorted(presets)}")
        self.set_weights(presets[preset])

    def set_think_time(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("think time must be non-negative")
        with self._lock:
            self._think_override = seconds
        self._notify()

    def set_active_workers(self, count: Optional[int]) -> None:
        """Dynamically change how many workers execute (None = all)."""
        if count is not None and count <= 0:
            raise ConfigurationError("active_workers must be positive")
        with self._lock:
            self._active_workers_override = count
        self._notify()

    def set_fault_profile(self, fields: Mapping[str, object]) -> None:
        """Re-tune the fault injector mid-run (partial update)."""
        self.faults.set_profile(self.faults.profile().updated(fields))
        self._notify()

    def current_fault_profile(self) -> dict[str, float]:
        return self.faults.profile().to_dict()

    def set_resilience(self, fields: Mapping[str, object]) -> None:
        """Re-tune retry policies / circuit breaker mid-run."""
        self.resilience.configure(fields)
        self._notify()

    def current_resilience(self) -> dict[str, object]:
        return self.resilience.describe()

    def breaker_allows(self) -> bool:
        """May a worker execute right now?  False while shedding load."""
        return self.resilience.breaker.allow(self.clock.now())

    def shed_breaker_open(self) -> int:
        """Shed due requests while the breaker is open; they count as
        postponed so the queue accounting invariant is preserved."""
        dropped = self.queue.drop_due(self.clock.now())
        if dropped:
            self.results.record_postponed(dropped)
            self.resilience.stats.record_breaker_shed(dropped)
        return dropped

    def resilience_payload(self) -> dict[str, object]:
        """Faults + retry/breaker state for the metrics snapshot."""
        return {
            "faults": {
                "profile": self.faults.profile().to_dict(),
                "injected": self.faults.counters(),
            },
            "retries": self.resilience.stats.snapshot(),
            "breaker": self.resilience.breaker.describe(),
        }

    def pause(self) -> None:
        """Temporarily block all workers from executing (paper §4.1.1)."""
        with self._lock:
            self._paused = True
            self.queue.pause()
        self._notify()

    def resume(self) -> None:
        with self._lock:
            self._paused = False
            self.queue.resume()
        self._notify()

    def _notify(self) -> None:
        callback = self.on_control_change
        if callback is not None:
            callback()

    def _rebuild_schedule(self) -> None:
        rate = (self._rate_override if self._rate_override is not None
                else self.current_phase.rate)
        if rate == RATE_DISABLED:
            self._schedule = None
            return
        effective = (Phase(duration=1.0, rate=rate).effective_rate
                     if rate != RATE_UNLIMITED
                     else Phase(duration=1.0).effective_rate)
        if self._schedule is None:
            self._schedule = ArrivalSchedule(
                effective, self.current_phase.arrival, self._arrival_rng)
        else:
            self._schedule.set_rate(effective)
            self._schedule.arrival = self.current_phase.arrival

    def _rebuild_mixture(self) -> None:
        weights = self.current_weights()
        names = list(weights)
        self._mixture = DiscreteDistribution(
            names, [weights[n] for n in names])
        self._mixture_version += 1

    # ------------------------------------------------------------------
    # worker-facing API
    # ------------------------------------------------------------------

    def sample_txn_name(self, rng: random.Random) -> str:
        # Lock-free fast path: a DiscreteDistribution is immutable after
        # construction and weight changes swap in a whole new instance
        # (atomic reference assignment), so workers may sample whichever
        # mixture they observe without serialising on the manager lock —
        # this runs once per executed transaction.
        mixture = self._mixture
        if mixture is None:
            with self._lock:
                if self._mixture is None:
                    self._rebuild_mixture()
                mixture = self._mixture
            assert mixture is not None
        return str(mixture.sample(rng))

    def record(self, sample: LatencySample) -> None:
        self.results.record(sample)

    # ------------------------------------------------------------------
    # status (REST API feedback, paper §2.2.4)
    # ------------------------------------------------------------------

    def status(self, now: Optional[float] = None,
               window: float = 5.0) -> dict[str, object]:
        if now is None:
            now = self.clock.now()
        instantaneous = self.results.metrics.instantaneous(now, window)
        with self._lock:
            return {
                "benchmark": self.benchmark.name,
                "tenant": self.tenant,
                "state": self._state,
                "paused": self._paused,
                "phase_index": self._phase_index,
                "phase_count": len(self.config.phases),
                "rate": self.current_rate(),
                "weights": self.current_weights(),
                "think_time": self.current_think_time(),
                "elapsed": max(0.0, now - self._run_started_at),
                "queue_depth": len(self.queue),
                "postponed": self.results.postponed,
                "throughput": instantaneous["throughput"],
                "avg_latency": instantaneous["avg_latency"],
                "per_txn": instantaneous["per_txn"],
            }

    def metrics(self, now: Optional[float] = None,
                window: float = 5.0) -> dict[str, object]:
        """The full streaming-metrics payload (``GET .../metrics``).

        Sliding-window throughput, per-transaction-type latency
        quantiles, and the queue's offered/taken/postponed accounting —
        all O(bins)/O(window); the raw sample list is never touched.
        """
        if now is None:
            now = self.clock.now()
        snapshot = self.results.metrics.snapshot(
            now, window,
            queue={**self.queue.counters(), "shards": self.queue.shards},
            resilience=self.resilience_payload())
        snapshot["engine"] = self.benchmark.database.cache_stats()
        snapshot["recording"] = self.results.recorder_stats()
        with self._lock:
            snapshot.update({
                "benchmark": self.benchmark.name,
                "tenant": self.tenant,
                "state": self._state,
                "paused": self._paused,
                "elapsed": max(0.0, now - self._run_started_at),
            })
        return snapshot
