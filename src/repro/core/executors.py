"""Execution substrates: real threads vs. discrete-event simulation.

Both executors drive the *same* WorkloadManager, request queue, and
benchmark transaction code against the *same* SQL engine; they differ only
in how time passes:

* :class:`ThreadedExecutor` — OLTP-Bench's architecture verbatim: a pacing
  thread feeds the queue each second, worker threads pull requests, execute
  them over DB-API connections, and sleep think times.  Real lock
  contention, real blocking.  Subject to GIL scheduling noise, so it backs
  the live demo and integration tests.
* :class:`SimulatedExecutor` — a deterministic event loop over a
  :class:`~repro.clock.SimClock`.  Transactions execute against the real
  engine at dispatch time (real rows, real SQL); their *duration* in
  virtual time is sampled from a :class:`DbmsPersonality` given the
  transaction's read/write footprint and the server-wide load (a shared
  :class:`LoadTracker` makes tenants interfere).  This is the substrate for
  rate-control-precision experiments: exact, fast, reproducible.

Both share a sever-wide load tracker so multi-tenant workloads contend for
the same simulated capacity.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Optional

from ..clock import Clock, RealClock, SimClock, StoppableSleeper
from ..engine.database import Database
from ..engine.dbapi import connect
from ..engine.service import DbmsPersonality, LoadTracker, get_personality
from ..errors import ConfigurationError
from ..faults import FaultingConnection
from ..rand import make_rng
from .manager import STATE_CREATED, WorkloadManager
from .requestqueue import Request
from .resilience import _attempt, run_with_resilience
from .results import DirectRecorder, LatencySample

_TOKENS = itertools.count(1)

#: Environment override for the default per-take batch limit.
TAKE_BATCH_ENV = "REPRO_TAKE_BATCH"
_MAX_TAKE_BATCH = 1024
_DEFAULT_TAKE_BATCH = 16


def default_take_batch() -> int:
    """Per-take batch limit from ``REPRO_TAKE_BATCH`` (default 16)."""
    raw = os.environ.get(TAKE_BATCH_ENV, "").strip()
    if not raw:
        return _DEFAULT_TAKE_BATCH
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{TAKE_BATCH_ENV} must be an integer, got {raw!r}") from None
    if not 1 <= value <= _MAX_TAKE_BATCH:
        raise ConfigurationError(
            f"{TAKE_BATCH_ENV} must be in [1, {_MAX_TAKE_BATCH}], "
            f"got {value}")
    return value


def _resilient_connect(database: Database, isolation) -> FaultingConnection:
    """Open a worker connection wrapped for fault injection.

    The wrapper is inert (passes every call straight through) until the
    retry loop arms it with a fault plan, so fault-free runs behave
    exactly as before.
    """
    return FaultingConnection(connect(database, isolation=isolation))


# ---------------------------------------------------------------------------
# Threaded execution
# ---------------------------------------------------------------------------


class ThreadedExecutor:
    """Runs workloads with real worker threads over wall-clock time.

    The worker hot path is batched: each queue visit pulls up to
    ``take_batch`` due requests in one lock/condvar round-trip, and each
    completed transaction lands in a worker-local
    :class:`~repro.core.results.SampleBuffer` that flushes into the
    streaming metrics pipeline in epochs.  ``take_batch=1`` plus
    ``buffer_samples=False`` reproduces the seed driver's per-request,
    per-sample locking exactly (the baseline mode of
    ``benchmarks/bench_queue_scaling.py``).
    """

    def __init__(self, database: Database,
                 personality: Optional[DbmsPersonality] = None,
                 clock: Optional[Clock] = None,
                 take_batch: Optional[int] = None,
                 buffer_samples: bool = True) -> None:
        if take_batch is None:
            take_batch = default_take_batch()
        if not 1 <= take_batch <= _MAX_TAKE_BATCH:
            raise ConfigurationError(
                f"take_batch must be in [1, {_MAX_TAKE_BATCH}], "
                f"got {take_batch}")
        self.database = database
        self.personality = personality
        self.clock = clock or RealClock()
        self.take_batch = take_batch
        self.buffer_samples = buffer_samples
        self.tracker = LoadTracker()
        self._workloads: list[tuple[WorkloadManager, int]] = []
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        #: Report of the most recent :meth:`run`, including any worker
        #: threads that failed to join (a leak the caller must see).
        self.last_run_report: dict[str, object] = {}

    def add_workload(self, manager: WorkloadManager,
                     workers: Optional[int] = None) -> WorkloadManager:
        self._workloads.append((manager, workers or manager.config.workers))
        return manager

    def run(self, timeout: Optional[float] = None) -> dict[str, object]:
        """Execute all pending workloads to phase completion (or timeout).

        Each call runs the workloads added since construction that have
        not started yet, with a fresh thread list and stop flag — an
        executor can therefore be reused across successive runs without
        accumulating dead (or worse, leaked-but-alive) worker threads.
        Returns a run report; ``report["leaked_threads"]`` names workers
        that missed the join deadline and ``report["error"]`` is set when
        any did.
        """
        if not self._workloads:
            raise ConfigurationError("no workloads added")
        runnable = [(manager, count) for manager, count in self._workloads
                    if manager.state == STATE_CREATED]
        if not runnable:
            raise ConfigurationError(
                "no runnable workloads: every added workload already ran "
                "(add_workload a fresh manager before calling run again)")
        self._stop = threading.Event()
        self._threads = []
        pacers = []
        for manager, worker_count in runnable:
            manager.begin_run(self.clock.now())
            for worker_id in range(worker_count):
                thread = threading.Thread(
                    target=self._worker_loop, args=(manager, worker_id),
                    name=f"{manager.tenant}-worker-{worker_id}", daemon=True)
                self._threads.append(thread)
                thread.start()
            pacer = threading.Thread(
                target=self._pacer_loop, args=(manager,),
                name=f"{manager.tenant}-pacer", daemon=True)
            pacers.append(pacer)
            pacer.start()
        deadline = (self.clock.now() + timeout) if timeout else None
        for pacer in pacers:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - self.clock.now())
            pacer.join(remaining)
        self.stop()
        for thread in self._threads:
            thread.join(timeout=2.0)
        leaked = [thread.name for thread in self._threads
                  if thread.is_alive()]
        report: dict[str, object] = {
            "workloads": len(runnable),
            "worker_threads": len(self._threads),
            "leaked_threads": leaked,
            "ok": not leaked,
        }
        if leaked:
            report["error"] = (
                f"{len(leaked)} worker thread(s) still alive after the "
                f"2s join deadline: {leaked}")
        self.last_run_report = report
        return report

    def stop(self) -> None:
        self._stop.set()
        for manager, _count in self._workloads:
            manager.stop()

    # -- pacing ----------------------------------------------------------

    def _pacer_loop(self, manager: WorkloadManager) -> None:
        second = self.clock.now()
        while not self._stop.is_set():
            if manager.tick(second) is None:
                return
            second += 1.0
            delay = second - self.clock.now()
            if delay > 0:
                self._stop.wait(delay)

    # -- workers ------------------------------------------------------------

    def _worker_loop(self, manager: WorkloadManager, worker_id: int) -> None:
        conn = _resilient_connect(self.database, manager.config.isolation)
        rng = make_rng(manager.config.seed, "worker", manager.tenant,
                       worker_id)
        retry_rng = make_rng(manager.config.seed, "retry", manager.tenant,
                             worker_id)
        sleeper = StoppableSleeper()
        # Worker-local sample recorder: per-sample appends, epoch flushes.
        # Flushed whenever the worker idles (empty queue, pause, breaker
        # backoff) and on exit, so samples never outlive the worker.
        recorder = (manager.results.buffered() if self.buffer_samples
                    else DirectRecorder(manager.results))
        try:
            while not self._stop.is_set() and not manager.finished:
                if manager.paused or not manager.worker_enabled(worker_id):
                    recorder.flush()
                    self._stop.wait(0.01)
                    continue
                if not manager.breaker_allows():
                    # Breaker open: shed due requests (counted postponed)
                    # instead of executing them, then back off briefly.
                    recorder.flush()
                    manager.shed_breaker_open()
                    self._stop.wait(0.02)
                    continue
                think = manager.current_think_time()
                if manager.closed_loop:
                    batch = [Request(self.clock.now(), 0)]
                else:
                    # Thinking workers take one request at a time (they
                    # must sleep between transactions anyway); throughput
                    # workers amortize the lock/condvar round-trip over
                    # up to ``take_batch`` due requests.
                    limit = 1 if think > 0 else self.take_batch
                    batch = manager.queue.take_batch(limit, timeout=0.2)
                    if not batch:
                        recorder.flush()
                        continue
                # One bypass check per batch: with retries, timeouts,
                # faults, and the breaker all off, every request is a
                # single bare attempt, so skip the resilience loop's
                # per-transaction locks and bulk-record the attempt
                # count instead.  Reconfiguration (PUT /v1/retries,
                # /v1/faults) takes effect at the next batch boundary.
                fast = (self.personality is None
                        and not manager.faults.armed
                        and manager.resilience.bypass_eligible())
                fast_attempts = 0
                try:
                    for request in batch:
                        if fast:
                            self._execute_fast(manager, worker_id, conn,
                                               rng, request, recorder)
                            fast_attempts += 1
                        else:
                            self._execute(manager, worker_id, conn, rng,
                                          retry_rng, request, recorder)
                except Exception:
                    # Engine errors are converted to STATUS_ERROR samples
                    # inside _execute; anything reaching here is a harness
                    # bug.  A worker dying silently would skew delivered
                    # throughput for the rest of the run, so stop the
                    # workload before letting the excepthook report it.
                    manager.stop()
                    raise
                finally:
                    if fast_attempts:
                        manager.resilience.stats.record_attempts(
                            fast_attempts)
                if think > 0:
                    sleeper.sleep(think)
        finally:
            recorder.flush()
            conn.close()

    def _execute_fast(self, manager: WorkloadManager, worker_id: int,
                      conn, rng, request: Request, recorder) -> None:
        """Single bare attempt; semantically ``_execute`` for the case the
        caller already proved: no personality (tracker output unused), no
        retries or timeouts, faults disarmed, breaker off.  Attempt counts
        are bulk-recorded per batch by the worker loop."""
        txn_name = manager.sample_txn_name(rng)
        proc = manager.benchmark.make_procedure(txn_name)
        started = self.clock.now()
        status, _exc = _attempt(proc, conn, rng)
        elapsed = self.clock.now() - started
        recorder.add(LatencySample(
            txn_name=txn_name, start=request.arrival_time,
            queue_delay=max(0.0, started - request.arrival_time),
            latency=elapsed, status=status,
            worker_id=worker_id, tenant=manager.tenant))

    def _execute(self, manager: WorkloadManager, worker_id: int, conn, rng,
                 retry_rng, request: Request, recorder) -> None:
        txn_name = manager.sample_txn_name(rng)
        proc = manager.benchmark.make_procedure(txn_name)
        started = self.clock.now()
        queue_delay = max(0.0, started - request.arrival_time)
        # The load tracker only feeds the personality's service-time
        # model; skip its two lock round-trips when there is none.
        track = self.personality is not None
        if track:
            token = next(_TOKENS)
            self.tracker.started(token, not proc.read_only)
        try:
            outcome = run_with_resilience(
                proc, txn_name, conn, rng, clock=self.clock,
                resilience=manager.resilience, injector=manager.faults,
                retry_rng=retry_rng, waiter=self._stop.wait)
            status = outcome.status
        finally:
            if track:
                self.tracker.finished(token)
        elapsed = self.clock.now() - started
        if self.personality is not None:
            stats = conn.last_txn_stats
            rows_read = stats.rows_read if stats else 0
            writes = stats.write_footprint if stats else 0
            target = self.personality.service_time(
                rng, rows_read, writes,
                max(1, self.tracker.active + 1), self.tracker.active_writers)
            if elapsed < target:
                self.clock.sleep(target - elapsed)
                elapsed = self.clock.now() - started
        recorder.add(LatencySample(
            txn_name=txn_name, start=request.arrival_time,
            queue_delay=queue_delay, latency=elapsed, status=status,
            worker_id=worker_id, tenant=manager.tenant))


# ---------------------------------------------------------------------------
# Simulated execution
# ---------------------------------------------------------------------------


class _SimWorker:
    __slots__ = ("worker_id", "conn", "rng", "retry_rng", "busy",
                 "extra_think")

    def __init__(self, worker_id: int, conn, rng, retry_rng,
                 extra_think: float = 0.0) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.rng = rng
        self.retry_rng = retry_rng
        self.busy = False
        self.extra_think = extra_think


class _SimWorkload:
    def __init__(self, manager: WorkloadManager,
                 workers: list[_SimWorker]) -> None:
        self.manager = manager
        self.workers = workers
        self.next_wake: Optional[float] = None


class SimulatedExecutor:
    """Deterministic discrete-event execution over virtual time."""

    def __init__(self, database: Database,
                 personality: DbmsPersonality | str = "inmem",
                 clock: Optional[SimClock] = None) -> None:
        self.database = database
        if isinstance(personality, str):
            personality = get_personality(personality)
        self.personality = personality
        self.clock = clock or SimClock()
        self.tracker = LoadTracker()
        self._workloads: list[_SimWorkload] = []

    def add_workload(self, manager: WorkloadManager,
                     workers: Optional[int] = None,
                     worker_think=None) -> WorkloadManager:
        """Attach a workload; ``worker_think(worker_id) -> seconds`` adds a
        per-worker extra think time, modelling heterogeneous clients."""
        if manager.clock is not self.clock:
            raise ConfigurationError(
                "manager must be constructed with the executor's SimClock")
        count = workers or manager.config.workers
        sim_workers = []
        for worker_id in range(count):
            conn = _resilient_connect(self.database,
                                      manager.config.isolation)
            rng = make_rng(manager.config.seed, "worker", manager.tenant,
                           worker_id)
            retry_rng = make_rng(manager.config.seed, "retry",
                                 manager.tenant, worker_id)
            extra = worker_think(worker_id) if worker_think else 0.0
            sim_workers.append(
                _SimWorker(worker_id, conn, rng, retry_rng, extra))
        workload = _SimWorkload(manager, sim_workers)
        self._workloads.append(workload)
        manager.on_control_change = lambda: self._schedule_dispatch(workload)
        return workload.manager

    # -- scheduling helpers --------------------------------------------------

    def at(self, when: float, callback) -> None:
        """Schedule a control action at virtual time ``when``.

        Benches and the game use this to change rates/mixtures mid-run.
        """
        self.clock.call_at(when, callback)

    def _schedule_dispatch(self, workload: _SimWorkload) -> None:
        self.clock.call_at(self.clock.now(),
                           lambda: self._dispatch(workload))

    # -- run loop ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        if not self._workloads:
            raise ConfigurationError("no workloads added")
        start = self.clock.now()
        for workload in self._workloads:
            workload.manager.begin_run(start)
            self._tick(workload, start)
        if until is not None:
            self.clock.run_until(start + until)
        else:
            self.clock.run()

    def _tick(self, workload: _SimWorkload, second: float) -> None:
        manager = workload.manager
        if manager.tick(second) is None:
            return
        self.clock.call_at(second + 1.0,
                           lambda: self._tick(workload, second + 1.0))
        self._dispatch(workload)

    def _dispatch(self, workload: _SimWorkload) -> None:
        manager = workload.manager
        if not manager.running or manager.paused:
            return
        now = self.clock.now()
        if not manager.breaker_allows():
            # Breaker open: shed everything already due (counted as
            # postponed) and come back when the cooldown admits a probe.
            manager.shed_breaker_open()
            retry_after = manager.resilience.breaker.retry_after(now)
            if retry_after > 0:
                self.clock.call_at(now + retry_after,
                                   lambda: self._dispatch(workload))
            return
        if manager.closed_loop:
            for worker in workload.workers:
                if not worker.busy and \
                        manager.worker_enabled(worker.worker_id):
                    self._start(workload, worker, Request(now, 0))
            return
        while True:
            worker = next(
                (w for w in workload.workers
                 if not w.busy and manager.worker_enabled(w.worker_id)),
                None)
            if worker is None:
                return
            request = manager.queue.poll(now)
            if request is None:
                arrival = manager.queue.next_arrival()
                if arrival is not None and arrival > now:
                    if workload.next_wake is None or \
                            workload.next_wake <= now or \
                            arrival < workload.next_wake:
                        workload.next_wake = arrival
                        self.clock.call_at(
                            arrival, lambda: self._dispatch(workload))
                return
            self._start(workload, worker, request)

    def _start(self, workload: _SimWorkload, worker: _SimWorker,
               request: Request) -> None:
        manager = workload.manager
        now = self.clock.now()
        worker.busy = True
        txn_name = manager.sample_txn_name(worker.rng)
        proc = manager.benchmark.make_procedure(txn_name)
        queue_delay = max(0.0, now - request.arrival_time)
        # Real SQL execution happens instantly at dispatch; the personality
        # decides how long it *takes* in virtual time.  Retries and
        # injected latency cannot sleep on a SimClock, so the loop runs
        # with waiter=None and its requested waits (backoff delays plus
        # latency spikes) are folded into the virtual service time.
        outcome = run_with_resilience(
            proc, txn_name, worker.conn, worker.rng, clock=self.clock,
            resilience=manager.resilience, injector=manager.faults,
            retry_rng=worker.retry_rng, waiter=None)
        stats = worker.conn.last_txn_stats
        rows_read = stats.rows_read if stats else 0
        writes = stats.write_footprint if stats else 0
        token = next(_TOKENS)
        self.tracker.started(token, writes > 0)
        service = self.personality.service_time(
            worker.rng, rows_read, writes,
            self.tracker.active, self.tracker.active_writers)
        service += outcome.waited
        self.clock.call_later(service, lambda: self._complete(
            workload, worker, token, txn_name, request.arrival_time,
            queue_delay, service, outcome.status))

    def _complete(self, workload: _SimWorkload, worker: _SimWorker,
                  token: int, txn_name: str, arrival: float,
                  queue_delay: float, service: float, status: str) -> None:
        self.tracker.finished(token)
        manager = workload.manager
        manager.record(LatencySample(
            txn_name=txn_name, start=arrival, queue_delay=queue_delay,
            latency=service, status=status, worker_id=worker.worker_id,
            tenant=manager.tenant))
        think = manager.current_think_time() + worker.extra_think
        if think > 0:
            self.clock.call_later(
                think, lambda: self._free(workload, worker))
        else:
            self._free(workload, worker)

    def _free(self, workload: _SimWorkload, worker: _SimWorker) -> None:
        worker.busy = False
        self._dispatch(workload)
