"""Workload configuration: the Python analogue of OLTP-Bench's config.xml.

A :class:`WorkloadConfiguration` bundles everything needed to run one
workload: the benchmark name, scale factor, number of worker terminals,
isolation level, RNG seed, and the list of execution phases.  Configurations
load from plain dicts, JSON files, or an OLTP-Bench-style XML document
(``<works><work>...</work></works>``).
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from ..errors import ConfigurationError
from .phase import ARRIVAL_UNIFORM, Phase, RATE_DISABLED, RATE_UNLIMITED


@dataclass
class WorkloadConfiguration:
    """Everything the Workload Manager needs to drive one benchmark."""

    benchmark: str
    scale_factor: float = 1.0
    workers: int = 8
    isolation: str = "serializable"
    seed: Optional[int] = None
    phases: list[Phase] = field(default_factory=list)
    dbms: str = "inmem"
    tenant: str = "tenant-0"

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ConfigurationError("workers must be positive")
        if self.scale_factor <= 0:
            raise ConfigurationError("scale_factor must be positive")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "WorkloadConfiguration":
        phases = [_phase_from_dict(p) for p in raw.get("phases", [])]
        known = {"benchmark", "scale_factor", "workers", "isolation",
                 "seed", "dbms", "tenant"}
        kwargs = {k: raw[k] for k in known if k in raw}
        if "benchmark" not in kwargs:
            raise ConfigurationError("configuration requires 'benchmark'")
        return cls(phases=phases, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, path: str | Path) -> "WorkloadConfiguration":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def from_xml(cls, path: str | Path) -> "WorkloadConfiguration":
        """Load an OLTP-Bench-flavoured XML configuration.

        Recognised elements: ``<benchmark>``, ``<scalefactor>``,
        ``<terminals>``, ``<isolation>``, ``<works><work>`` with ``<time>``,
        ``<rate>``, ``<weights>`` (comma-separated, paired with
        ``<transactiontypes>``), and ``<arrival>``.
        """
        tree = ET.parse(path)
        root = tree.getroot()

        def text(tag: str, default: Optional[str] = None) -> Optional[str]:
            node = root.find(tag)
            return node.text.strip() if node is not None and node.text else default

        benchmark = text("benchmark")
        if benchmark is None:
            raise ConfigurationError("XML config missing <benchmark>")
        txn_names = [
            node.findtext("name", "").strip().lower()
            for node in root.findall("./transactiontypes/transactiontype")
        ]
        phases = []
        for work in root.findall("./works/work"):
            duration = float(work.findtext("time", "60"))
            rate_text = (work.findtext("rate") or RATE_UNLIMITED).strip().lower()
            rate: object
            if rate_text in (RATE_UNLIMITED, RATE_DISABLED):
                rate = rate_text
            else:
                rate = float(rate_text)
            weights_text = work.findtext("weights", "")
            weights: dict[str, float] = {}
            if weights_text:
                values = [float(v) for v in weights_text.split(",")]
                if txn_names and len(values) != len(txn_names):
                    raise ConfigurationError(
                        "weights count does not match transaction types")
                names = txn_names or [f"txn{i}" for i in range(len(values))]
                weights = dict(zip(names, values))
            arrival = (work.findtext("arrival") or ARRIVAL_UNIFORM).strip().lower()
            active_text = work.findtext("active_terminals")
            active = int(active_text) if active_text else None
            phases.append(Phase(duration=duration, rate=rate,
                                weights=weights, arrival=arrival,
                                active_workers=active))
        return cls(
            benchmark=benchmark.strip().lower(),
            scale_factor=float(text("scalefactor", "1") or "1"),
            workers=int(text("terminals", "8") or "8"),
            isolation=(text("isolation", "serializable") or "serializable").lower(),
            phases=phases,
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "scale_factor": self.scale_factor,
            "workers": self.workers,
            "isolation": self.isolation,
            "seed": self.seed,
            "dbms": self.dbms,
            "tenant": self.tenant,
            "phases": [_phase_to_dict(p) for p in self.phases],
        }

    def to_json(self, path: str | Path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    # -- helpers ---------------------------------------------------------------

    def total_duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    def validated_against(self, txn_names: Sequence[str]) -> None:
        """Check every phase's weights reference known transaction types."""
        known = set(txn_names)
        for i, phase in enumerate(self.phases):
            unknown = set(phase.weights) - known
            if unknown:
                raise ConfigurationError(
                    f"phase {i} references unknown transactions: "
                    f"{sorted(unknown)}")


def _phase_from_dict(raw: Mapping[str, object]) -> Phase:
    kwargs = dict(raw)
    active = kwargs.pop("active_workers", None)
    return Phase(
        duration=float(kwargs.pop("duration")),
        rate=kwargs.pop("rate", RATE_UNLIMITED),
        weights=dict(kwargs.pop("weights", {})),
        arrival=str(kwargs.pop("arrival", ARRIVAL_UNIFORM)),
        think_time=float(kwargs.pop("think_time", 0.0)),
        active_workers=int(active) if active is not None else None,
        name=str(kwargs.pop("name", "")),
    )


def _phase_to_dict(phase: Phase) -> dict[str, object]:
    return {
        "duration": phase.duration,
        "rate": phase.rate,
        "weights": dict(phase.weights),
        "arrival": phase.arrival,
        "think_time": phase.think_time,
        "active_workers": phase.active_workers,
        "name": phase.name,
    }
