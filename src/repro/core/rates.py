"""Arrival schedules: how requests are interleaved within each second.

Paper §2.2.1: "The exact number of requests configured is added to the
queue each second, and each arrival is interleaved with a uniform or
exponential arrival time."

* Uniform interleaving spaces the n arrivals evenly across the second.
* Exponential interleaving places them at the order statistics of n i.i.d.
  Uniform(0,1) draws — exactly the distribution of Poisson-process arrival
  times conditioned on n arrivals in the interval, i.e. exponential gaps
  with the configured count preserved.

Fractional rates are honoured with a deficit accumulator so that, e.g.,
2.5 tps alternates batches of 2 and 3 and long-run delivery is exact.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import ConfigurationError
from ..rand import make_rng
from .phase import ARRIVAL_EXPONENTIAL, ARRIVAL_UNIFORM


def uniform_offsets(count: int) -> list[float]:
    """Evenly spaced offsets in [0, 1) for ``count`` arrivals."""
    if count <= 0:
        return []
    return [i / count for i in range(count)]


def exponential_offsets(count: int, rng: random.Random) -> list[float]:
    """Poisson-conditioned offsets: sorted i.i.d. Uniform(0,1) draws."""
    if count <= 0:
        return []
    return sorted(rng.random() for _ in range(count))


class ArrivalSchedule:
    """Produces per-second arrival timestamp batches at a target rate."""

    def __init__(self, rate: float, arrival: str = ARRIVAL_UNIFORM,
                 rng: random.Random | None = None) -> None:
        if rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if arrival not in (ARRIVAL_UNIFORM, ARRIVAL_EXPONENTIAL):
            raise ConfigurationError(f"unknown arrival kind {arrival!r}")
        self.rate = float(rate)
        self.arrival = arrival
        # Callers normally pass the manager's seeded rng; the fallback is
        # seeded too so a bare ArrivalSchedule still replays identically.
        self._rng = rng or make_rng(0, "arrival-schedule")
        self._deficit = 0.0

    def set_rate(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.rate = float(rate)

    def batch(self, second_start: float) -> list[float]:
        """Arrival timestamps for the second beginning at ``second_start``."""
        self._deficit += self.rate
        count = int(self._deficit)
        self._deficit -= count
        if self.arrival == ARRIVAL_UNIFORM:
            offsets = uniform_offsets(count)
        else:
            offsets = exponential_offsets(count, self._rng)
        return [second_start + offset for offset in offsets]

    def stream(self, start: float) -> Iterator[list[float]]:
        """Infinite stream of per-second batches starting at ``start``."""
        second = start
        while True:
            yield self.batch(second)
            second += 1.0
