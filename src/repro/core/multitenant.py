"""Multi-tenancy coordination (paper §2.2.3).

OLTP-Bench "can be configured to run multiple workloads and benchmarks in
parallel... allowing users to perform multi-tenancy tests that isolate
different workloads within the same instance".  A
:class:`MultiTenantCoordinator` builds one WorkloadManager per tenant on a
shared database/executor, runs them together, and reports per-tenant and
combined results so interference is directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..clock import SimClock
from ..engine.database import Database
from ..engine.service import DbmsPersonality
from ..errors import ConfigurationError
from .benchmark import BenchmarkModule
from .config import WorkloadConfiguration
from .executors import SimulatedExecutor, ThreadedExecutor
from .manager import WorkloadManager
from .results import Results, merge


@dataclass
class Tenant:
    """One tenant: a benchmark plus its workload configuration."""

    benchmark: BenchmarkModule
    config: WorkloadConfiguration
    manager: Optional[WorkloadManager] = None


class MultiTenantCoordinator:
    """Runs several tenants against one shared database instance."""

    def __init__(self, database: Database,
                 personality: DbmsPersonality | str = "inmem",
                 simulated: bool = True) -> None:
        self.database = database
        self.simulated = simulated
        if simulated:
            self.clock = SimClock()
            self.executor = SimulatedExecutor(database, personality,
                                              self.clock)
        else:
            self.executor = ThreadedExecutor(database)
            self.clock = self.executor.clock
        self.tenants: list[Tenant] = []

    def add_tenant(self, benchmark: BenchmarkModule,
                   config: WorkloadConfiguration) -> WorkloadManager:
        if not benchmark.loaded:
            raise ConfigurationError(
                f"benchmark {benchmark.name!r} must be loaded before adding")
        config.tenant = config.tenant or f"tenant-{len(self.tenants)}"
        manager = WorkloadManager(benchmark, config, clock=self.clock)
        self.executor.add_workload(manager)
        self.tenants.append(Tenant(benchmark, config, manager))
        return manager

    def run(self, until: Optional[float] = None) -> None:
        if not self.tenants:
            raise ConfigurationError("no tenants added")
        if self.simulated:
            self.executor.run(until=until)
        else:
            self.executor.run(timeout=until)

    # -- reporting -----------------------------------------------------------

    def per_tenant_results(self) -> dict[str, Results]:
        return {t.config.tenant: t.manager.results
                for t in self.tenants if t.manager is not None}

    def combined_results(self) -> Results:
        return merge(r for r in self.per_tenant_results().values())

    def interference_report(self, window: tuple[float, float]
                            ) -> dict[str, float]:
        """Per-tenant delivered throughput over a shared time window."""
        return {
            tenant: results.throughput(window)
            for tenant, results in self.per_tenant_results().items()
        }
