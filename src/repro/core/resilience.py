"""Resilience policy: retry with backoff, timeouts, and a circuit breaker.

The executors used to give up on the first exception, which means a
single transient fault — injected by ``repro.faults`` or organic engine
contention — pollutes the measured results.  This module makes the
harness survive transient faults the way a production client would:

* :class:`RetryPolicy` — per-procedure retry with exponential backoff
  plus deterministic jitter and a per-attempt timeout that bounds
  injected latency spikes;
* :class:`CircuitBreaker` — sheds load (counted as *postponed*, so the
  queue invariant ``offered == taken + postponed + depth`` still holds)
  when the recent error rate spikes, then probes half-open after a
  cooldown;
* :class:`ResilienceStats` — retried/recovered/exhausted/timeout/shed
  counters and a retry-latency histogram, surfaced through
  ``WorkloadManager.metrics()`` → ``GET /v1/metrics``;
* :func:`run_with_resilience` — the attempt loop both executors share.

Only *retryable* failures are retried: :class:`TransactionAborted`
subclasses and injected disconnects.  Benchmark-intended aborts
(:class:`~repro.core.procedure.UserAbort`, e.g. TPC-C's 1% invalid
item) are part of the workload's semantics and are never retried.
"""

from __future__ import annotations

import os
import random
import threading
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Optional

from ..clock import Clock
from ..errors import (ConfigurationError, Error, InjectedDisconnect,
                      StatementTimeout, TransactionAborted)
from ..faults.connection import CONNECTION_FAULT_KINDS, FaultingConnection
from ..faults.injector import FaultInjector, KIND_LATENCY
from ..metrics.histogram import LatencyHistogram
from .procedure import UserAbort
from .results import STATUS_ABORTED, STATUS_ERROR, STATUS_OK

#: Environment knob read by :func:`default_retry_policy` — the CI chaos
#: job sets it so the whole tier-1 suite runs with retries absorbing the
#: injected transients.
ENV_RETRIES = "REPRO_CHAOS_RETRIES"


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable retry/backoff/timeout parameters for one procedure."""

    #: Total attempts including the first; 1 disables retries.
    max_attempts: int = 1
    #: First backoff delay in seconds.
    backoff_base: float = 0.01
    #: Multiplier applied per additional failure (exponential backoff).
    backoff_multiplier: float = 2.0
    #: Ceiling on any single backoff delay.
    backoff_max: float = 1.0
    #: Fraction of each delay that is randomized away (decorrelation).
    jitter: float = 0.5
    #: Per-attempt timeout in seconds; bounds injected latency spikes
    #: (a spike longer than this fails fast as a retryable
    #: :class:`~repro.errors.StatementTimeout` after only ``timeout``
    #: seconds of waiting).  ``None`` disables the bound.
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("timeout must be positive or None")

    def delay(self, failures: int,
              rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``failures`` (1-based)."""
        base = self.backoff_base * (self.backoff_multiplier
                                    ** max(0, failures - 1))
        base = min(self.backoff_max, base)
        if self.jitter and rng is not None:
            base *= 1.0 - self.jitter * rng.random()
        return base

    def to_dict(self) -> dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_multiplier": self.backoff_multiplier,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object],
                  base: Optional["RetryPolicy"] = None) -> "RetryPolicy":
        known = set(cls().to_dict())
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"unknown retry policy fields: {sorted(unknown)}; "
                f"known: {sorted(known)}")
        policy = base or cls()
        fields: dict[str, object] = {}
        try:
            for key, value in raw.items():
                if key == "max_attempts":
                    fields[key] = int(value)  # type: ignore[arg-type]
                elif key == "timeout":
                    fields[key] = None if value is None else float(value)  # type: ignore[arg-type]
                else:
                    fields[key] = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ConfigurationError(
                "retry policy values must be numbers") from None
        return replace(policy, **fields)  # type: ignore[arg-type]


def default_retry_policy() -> RetryPolicy:
    """Zero-retry unless the ``REPRO_CHAOS_RETRIES`` env knob is set."""
    raw = os.environ.get(ENV_RETRIES, "")
    try:
        attempts = int(raw)
    except ValueError:
        attempts = 1
    if attempts > 1:
        # Chaos runs share real test suites: keep backoff tight so the
        # absorbed retries do not blow test deadlines.
        return RetryPolicy(max_attempts=attempts, backoff_base=0.002,
                           backoff_max=0.05)
    return RetryPolicy()


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Error-rate circuit breaker over a sliding outcome window.

    Disabled unless ``error_threshold`` is set.  While *open*, callers
    must shed load instead of executing; after ``cooldown`` seconds one
    half-open probe is admitted, and its outcome decides between closing
    and re-opening.  All time comes from the injected clock, so the
    breaker behaves identically under the simulated executor.
    """

    def __init__(self, clock: Clock,
                 error_threshold: Optional[float] = None,
                 window_seconds: float = 5.0,
                 min_samples: int = 20,
                 cooldown: float = 2.0) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: deque[tuple[float, bool]] = deque()
        self._state = BREAKER_CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opened_count = 0
        self.configure(error_threshold=error_threshold,
                       window_seconds=window_seconds,
                       min_samples=min_samples, cooldown=cooldown)

    def configure(self, error_threshold: Optional[float] = None,
                  window_seconds: Optional[float] = None,
                  min_samples: Optional[int] = None,
                  cooldown: Optional[float] = None) -> None:
        with self._lock:
            if error_threshold is not None and \
                    not 0.0 < float(error_threshold) <= 1.0:
                raise ConfigurationError(
                    "error_threshold must be in (0, 1] or None")
            self.error_threshold = (None if error_threshold is None
                                    else float(error_threshold))
            if window_seconds is not None:
                if window_seconds <= 0:
                    raise ConfigurationError(
                        "window_seconds must be positive")
                self.window_seconds = float(window_seconds)
            if min_samples is not None:
                if min_samples < 1:
                    raise ConfigurationError("min_samples must be >= 1")
                self.min_samples = int(min_samples)
            if cooldown is not None:
                if cooldown <= 0:
                    raise ConfigurationError("cooldown must be positive")
                self.cooldown = float(cooldown)
            if self.error_threshold is None:
                self._state = BREAKER_CLOSED
                self._probe_inflight = False
                self._outcomes.clear()

    @property
    def enabled(self) -> bool:
        return self.error_threshold is not None

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()

    def allow(self, now: Optional[float] = None) -> bool:
        """May a request execute right now?  False means: shed it."""
        if not self.enabled:
            return True
        if now is None:
            now = self._clock.now()
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                if now - self._opened_at < self.cooldown:
                    return False
                self._state = BREAKER_HALF_OPEN
                self._probe_inflight = True
                return True
            # half-open: one probe at a time
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def retry_after(self, now: Optional[float] = None) -> float:
        """Seconds until the next half-open probe is admitted."""
        if now is None:
            now = self._clock.now()
        with self._lock:
            if self._state != BREAKER_OPEN:
                return 0.0
            return max(0.0, self._opened_at + self.cooldown - now)

    def record(self, ok: bool, now: Optional[float] = None) -> None:
        """Feed one transaction outcome into the error-rate window."""
        if not self.enabled:
            return
        if now is None:
            now = self._clock.now()
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._probe_inflight = False
                if ok:
                    self._state = BREAKER_CLOSED
                    self._outcomes.clear()
                else:
                    self._state = BREAKER_OPEN
                    self._opened_at = now
                    self.opened_count += 1
                return
            self._outcomes.append((now, ok))
            self._prune(now)
            if self._state != BREAKER_CLOSED:
                return
            total = len(self._outcomes)
            if total < self.min_samples:
                return
            failures = sum(1 for _, outcome_ok in self._outcomes
                           if not outcome_ok)
            if failures / total > self.error_threshold:
                self._state = BREAKER_OPEN
                self._opened_at = now
                self.opened_count += 1

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                "error_threshold": self.error_threshold,
                "window_seconds": self.window_seconds,
                "min_samples": self.min_samples,
                "cooldown": self.cooldown,
                "state": self._state,
                "opened_count": self.opened_count,
            }


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


class ResilienceStats:
    """Thread-safe counters + retry-latency histogram for one workload."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._attempts = 0
        self._retried = 0
        self._recovered = 0
        self._exhausted = 0
        self._timeouts = 0
        self._breaker_shed = 0
        self._retry_delay = LatencyHistogram()

    def record_attempt(self) -> None:
        with self._lock:
            self._attempts += 1

    def record_attempts(self, count: int) -> None:
        """Bulk attempt accounting for the executors' batched fast path."""
        with self._lock:
            self._attempts += count

    def record_retry(self, delay: float) -> None:
        with self._lock:
            self._retried += 1
            self._retry_delay.record(delay)

    def record_recovered(self) -> None:
        with self._lock:
            self._recovered += 1

    def record_exhausted(self) -> None:
        with self._lock:
            self._exhausted += 1

    def record_timeout(self) -> None:
        with self._lock:
            self._timeouts += 1

    def record_breaker_shed(self, count: int = 1) -> None:
        with self._lock:
            self._breaker_shed += count

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "attempts": self._attempts,
                "retried": self._retried,
                "recovered": self._recovered,
                "exhausted": self._exhausted,
                "timeouts": self._timeouts,
                "breaker_shed": self._breaker_shed,
                "retry_latency": self._retry_delay.snapshot(),
            }


# ---------------------------------------------------------------------------
# Per-workload resilience state
# ---------------------------------------------------------------------------


class Resilience:
    """One workload's retry policies, circuit breaker, and stats."""

    def __init__(self, clock: Clock,
                 default: Optional[RetryPolicy] = None,
                 per_procedure: Optional[Mapping[str, RetryPolicy]] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self._lock = threading.Lock()
        self._default = default or default_retry_policy()
        self._per_procedure: dict[str, RetryPolicy] = dict(per_procedure
                                                           or {})
        self.breaker = breaker or CircuitBreaker(clock)
        self.stats = ResilienceStats()

    def policy_for(self, txn_name: str) -> RetryPolicy:
        with self._lock:
            return self._per_procedure.get(txn_name, self._default)

    def bypass_eligible(self) -> bool:
        """True when the attempt loop degenerates to one bare attempt.

        No policy (default or per-procedure override) retries or applies
        a statement timeout, and the breaker is disabled — so for every
        transaction :func:`run_with_resilience` would do exactly one
        ``_attempt`` plus bookkeeping.  The threaded executor checks this
        once per taken batch and runs attempts directly, bulk-recording
        attempt counts via :meth:`ResilienceStats.record_attempts`;
        control-plane reconfiguration mid-run is picked up at the next
        batch boundary.
        """
        if self.breaker.enabled:
            return False
        with self._lock:
            policies = [self._default, *self._per_procedure.values()]
        return all(policy.max_attempts == 1 and policy.timeout is None
                   for policy in policies)

    def set_default(self, policy: RetryPolicy) -> None:
        with self._lock:
            self._default = policy

    def set_procedure_policy(self, txn_name: str,
                             policy: Optional[RetryPolicy]) -> None:
        with self._lock:
            if policy is None:
                self._per_procedure.pop(txn_name, None)
            else:
                self._per_procedure[txn_name] = policy

    def configure(self, raw: Mapping[str, object]) -> None:
        """Partial update from a control-plane body.

        Top-level retry fields update the default policy; the optional
        ``per_procedure`` mapping overrides single transactions (null
        clears an override); the optional ``breaker`` mapping re-tunes
        the circuit breaker.
        """
        if not isinstance(raw, Mapping):
            raise ConfigurationError("resilience body must be an object")
        body = dict(raw)
        per_procedure = body.pop("per_procedure", None)
        breaker = body.pop("breaker", None)
        with self._lock:
            if body:
                self._default = RetryPolicy.from_dict(body,
                                                      base=self._default)
            if per_procedure is not None:
                if not isinstance(per_procedure, Mapping):
                    raise ConfigurationError(
                        "per_procedure must map txn names to policies")
                for name, fields in per_procedure.items():
                    if fields is None:
                        self._per_procedure.pop(name, None)
                    else:
                        base = self._per_procedure.get(name, self._default)
                        self._per_procedure[name] = RetryPolicy.from_dict(
                            fields, base=base)
        if breaker is not None:
            if not isinstance(breaker, Mapping):
                raise ConfigurationError("breaker must be an object")
            known = {"error_threshold", "window_seconds", "min_samples",
                     "cooldown"}
            unknown = set(breaker) - known
            if unknown:
                raise ConfigurationError(
                    f"unknown breaker fields: {sorted(unknown)}")
            self.breaker.configure(**breaker)  # type: ignore[arg-type]

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                **self._default.to_dict(),
                "per_procedure": {name: policy.to_dict() for name, policy
                                  in sorted(self._per_procedure.items())},
                "breaker": self.breaker.describe(),
            }


# ---------------------------------------------------------------------------
# The shared attempt loop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResilientOutcome:
    """Final result of one request after retries."""

    status: str
    attempts: int
    #: Injected-latency and backoff seconds the loop *requested*; real
    #: executors slept them through ``waiter``, the simulated executor
    #: adds them to the transaction's virtual service time instead.
    waited: float


def _attempt(proc, conn, rng) -> tuple[str, Optional[Exception]]:
    """Execute one transaction attempt; map the outcome like a worker."""
    try:
        proc.run(conn, rng)
        if conn.in_transaction:
            conn.commit()
        return STATUS_OK, None
    except TransactionAborted as exc:
        conn.rollback()
        return STATUS_ABORTED, exc
    except Error as exc:
        conn.rollback()
        return STATUS_ERROR, exc


def run_with_resilience(proc, txn_name: str, conn: FaultingConnection,
                        rng: random.Random, *,
                        clock: Clock,
                        resilience: Resilience,
                        injector: Optional[FaultInjector] = None,
                        retry_rng: Optional[random.Random] = None,
                        waiter: Optional[Callable[[float], None]] = None,
                        ) -> ResilientOutcome:
    """Run one request under the workload's retry policy.

    ``waiter`` performs real (interruptible) sleeps for the threaded
    executor; the simulated executor passes ``None`` and folds the
    returned :attr:`ResilientOutcome.waited` into virtual service time.
    """
    policy = resilience.policy_for(txn_name)
    stats = resilience.stats
    waited = 0.0

    def wait(seconds: float) -> None:
        nonlocal waited
        if seconds <= 0:
            return
        waited += seconds
        if waiter is not None:
            waiter(seconds)

    attempts = 0
    while True:
        attempts += 1
        stats.record_attempt()
        # ``armed`` is a lock-free read: while faults are disabled the
        # injector's per-attempt lock is never touched.  (Default True so
        # duck-typed injectors without the property still inject.)
        plan = injector.attempt_begin(txn_name) \
            if injector is not None and getattr(injector, "armed", True) \
            else None
        if plan is not None and plan.kind == KIND_LATENCY:
            spike = plan.latency
            if policy.timeout is not None and spike > policy.timeout:
                # The statement timeout bounds the spike: give up after
                # ``timeout`` seconds instead of riding it out.
                wait(policy.timeout)
                conn.rollback()
                stats.record_timeout()
                status: str = STATUS_ABORTED
                exc: Optional[Exception] = StatementTimeout(
                    f"injected latency spike of {spike:.3f}s exceeded the "
                    f"{policy.timeout:.3f}s statement timeout")
            else:
                wait(spike)
                status, exc = _attempt(proc, conn, rng)
        else:
            if plan is not None and plan.kind in CONNECTION_FAULT_KINDS:
                conn.arm(plan)
            status, exc = _attempt(proc, conn, rng)
            # Disarm: an organic failure can beat the planned fault to
            # the punch, and a stale plan must not leak into the retry.
            conn.arm(None)
        ok = status == STATUS_OK
        if resilience.breaker.enabled:
            resilience.breaker.record(ok, clock.now())
        if ok:
            if attempts > 1:
                stats.record_recovered()
            return ResilientOutcome(status, attempts, waited)
        if conn.dropped or isinstance(exc, InjectedDisconnect):
            conn.reconnect()
        retryable = (exc is not None
                     and getattr(exc, "retryable", False)
                     and not isinstance(exc, UserAbort))
        if not retryable:
            return ResilientOutcome(status, attempts, waited)
        if attempts >= policy.max_attempts:
            if policy.max_attempts > 1:
                stats.record_exhausted()
            return ResilientOutcome(status, attempts, waited)
        delay = policy.delay(attempts, retry_rng)
        stats.record_retry(delay)
        wait(delay)


__all__ = [
    "BREAKER_CLOSED", "BREAKER_HALF_OPEN", "BREAKER_OPEN", "CircuitBreaker",
    "ENV_RETRIES", "Resilience", "ResilienceStats", "ResilientOutcome",
    "RetryPolicy", "default_retry_policy", "run_with_resilience",
]
