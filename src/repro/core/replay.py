"""Trace-driven workloads: replay a recorded rate series as phases.

Paper §1: "OLTP-Bench also supports changing transaction request rates
dynamically during execution based on user-defined workloads", i.e. rate
profiles recorded from production systems (the original work replays a
Wikipedia trace).  This module turns a throughput time series — hand
written, loaded from CSV, or extracted from a previous run's trace — into
the phase list that reproduces it.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ConfigurationError
from .phase import ARRIVAL_UNIFORM, Phase
from .results import Results


def phases_from_series(series: Sequence[tuple[float, float]],
                       weights: Optional[dict] = None,
                       arrival: str = ARRIVAL_UNIFORM,
                       min_rate: float = 0.1) -> list[Phase]:
    """Convert ``(duration_seconds, rate_tps)`` pairs into phases.

    Adjacent segments with the same rate are merged; rates below
    ``min_rate`` are clamped up so the workload never fully stops (the
    empty-second semantics of a recorded trace are preserved closely
    enough at 0.1 tps).
    """
    if not series:
        raise ConfigurationError("empty rate series")
    merged: list[list[float]] = []
    for duration, rate in series:
        if duration <= 0:
            raise ConfigurationError("segment durations must be positive")
        rate = max(float(rate), min_rate)
        if merged and merged[-1][1] == rate:
            merged[-1][0] += duration
        else:
            merged.append([float(duration), rate])
    return [
        Phase(duration=duration, rate=rate, weights=dict(weights or {}),
              arrival=arrival, name=f"replay-{i}")
        for i, (duration, rate) in enumerate(merged)
    ]


def phases_from_csv(path: str | Path, weights: Optional[dict] = None,
                    arrival: str = ARRIVAL_UNIFORM) -> list[Phase]:
    """Load a rate profile CSV with ``duration,rate`` rows.

    Lines starting with ``#`` and a ``duration,rate`` header are skipped.
    """
    series: list[tuple[float, float]] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].lstrip().startswith("#"):
                continue
            if row[0].strip().lower() == "duration":
                continue
            if len(row) < 2:
                raise ConfigurationError(f"malformed trace row: {row!r}")
            series.append((float(row[0]), float(row[1])))
    return phases_from_series(series, weights=weights, arrival=arrival)


def phases_from_results(results: Results, bucket_seconds: int = 10,
                        weights: Optional[dict] = None,
                        scale: float = 1.0) -> list[Phase]:
    """Extract a replayable rate profile from a previous run's results.

    The committed-throughput series is averaged into ``bucket_seconds``
    buckets and optionally scaled — e.g. replay yesterday's production
    trace at 2x to test headroom.
    """
    if bucket_seconds <= 0:
        raise ConfigurationError("bucket_seconds must be positive")
    per_second = dict(results.per_second_throughput())
    if not per_second:
        raise ConfigurationError("results contain no committed samples")
    start, end = min(per_second), max(per_second) + 1
    series: list[tuple[float, float]] = []
    for bucket_start in range(start, end, bucket_seconds):
        span = min(bucket_seconds, end - bucket_start)
        total = sum(per_second.get(second, 0)
                    for second in range(bucket_start, bucket_start + span))
        series.append((float(span), scale * total / span))
    return phases_from_series(series, weights=weights)
