"""Process-parallel execution: one OS process per tenant.

The :class:`~repro.core.executors.ThreadedExecutor` runs every tenant's
worker pool inside one Python process, so all tenants share one GIL — at
driver-capacity rates the interpreter itself becomes the bottleneck the
paper's Workload Manager is supposed to never be.  :class:`ProcessExecutor`
escapes it: each tenant gets its own child process owning its own engine
instance, benchmark dataset, sharded request queue, and (batched)
ThreadedExecutor; the parent coordinates a ready/go barrier so data
loading never pollutes the measured window, and a per-tenant relay thread
drains a pipe carrying periodic light stats plus the final sample set.

Protocol on each tenant pipe (child -> parent unless noted):

1. ``("ready", tenant)`` once schema + data are loaded;
2. parent -> child ``("go", timeout)`` after *all* tenants are ready;
3. ``("stats", payload)`` every ``stats_interval`` seconds while running;
4. ``("samples", chunk)`` — the final sample list in bounded chunks;
5. ``("done", report)`` and EOF; or ``("error", message)`` followed by the
   child re-raising (never swallowed — the exit code must show it).

Only :class:`~repro.core.results.LatencySample` tuples and plain dicts
cross the pipe; engine objects, managers, and locks never do.  The parent
rebuilds a :class:`~repro.core.results.Results` per tenant via
``record_batch`` (one lock pass per chunk), so post-run reporting and
``merge`` work exactly as with in-process executors.

Caveats (documented in docs/driver-scaling.md): tenants no longer share
one database instance, so this substrate measures *driver* scale-out and
per-tenant-database deployments, not cross-tenant engine interference —
use the threaded or simulated executors for interference studies.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ConfigurationError
from .benchmark import BenchmarkModule
from .config import WorkloadConfiguration
from .manager import WorkloadManager
from .results import Results, merge

#: Samples per pipe message when relaying the final sample set.
SAMPLE_CHUNK = 1024


@dataclass
class TenantSpec:
    """Picklable description of one tenant's workload.

    ``benchmark_factory`` (a module-level callable, so it pickles under
    any multiprocessing start method) receives the spec and must return a
    *loaded* :class:`BenchmarkModule`; when omitted the child builds a
    fresh engine ``Database`` and loads the registry benchmark named by
    ``config.benchmark`` with ``benchmark_kwargs``.
    """

    config: WorkloadConfiguration
    benchmark_factory: Optional[Callable[["TenantSpec"], BenchmarkModule]] \
        = None
    benchmark_kwargs: dict = field(default_factory=dict)
    queue_shards: Optional[int] = None
    take_batch: Optional[int] = None
    buffer_samples: bool = True
    workers: Optional[int] = None
    stats_interval: float = 1.0


def _build_benchmark(spec: TenantSpec) -> BenchmarkModule:
    if spec.benchmark_factory is not None:
        return spec.benchmark_factory(spec)
    from ..benchmarks import create_benchmark
    from ..engine.database import Database
    bench = create_benchmark(spec.config.benchmark, Database(),
                             scale_factor=spec.config.scale_factor,
                             seed=spec.config.seed,
                             **spec.benchmark_kwargs)
    bench.load()
    return bench


def _tenant_main(spec: TenantSpec, conn) -> None:
    """Child-process entry point: load, barrier, run, relay, report."""
    from .executors import ThreadedExecutor

    try:
        bench = _build_benchmark(spec)
        executor = ThreadedExecutor(bench.database,
                                    take_batch=spec.take_batch,
                                    buffer_samples=spec.buffer_samples)
        manager = WorkloadManager(bench, spec.config,
                                  clock=executor.clock,
                                  queue_shards=spec.queue_shards)
        executor.add_workload(manager, workers=spec.workers)
        conn.send(("ready", spec.config.tenant))
        message = conn.recv()
        if message[0] != "go":
            raise ConfigurationError(
                f"tenant {spec.config.tenant!r} expected 'go', "
                f"got {message[0]!r}")
        timeout = message[1]

        stop_stats = threading.Event()

        def _stats_loop() -> None:
            while not stop_stats.wait(spec.stats_interval):
                conn.send(("stats", _light_stats(manager)))

        stats_thread = threading.Thread(
            target=_stats_loop, name=f"{spec.config.tenant}-stats",
            daemon=True)
        stats_thread.start()
        try:
            report = executor.run(timeout=timeout)
        finally:
            stop_stats.set()
            stats_thread.join(timeout=2.0)

        samples = manager.results.samples()
        for start in range(0, len(samples), SAMPLE_CHUNK):
            conn.send(("samples", samples[start:start + SAMPLE_CHUNK]))
        report = dict(report)
        report.update({
            "tenant": spec.config.tenant,
            "postponed": manager.results.postponed,
            "queue": manager.queue.counters(),
            "queue_shards": manager.queue.shards,
            "recording": manager.results.recorder_stats(),
        })
        conn.send(("done", report))
    except Exception as exc:
        # Surface the failure to the parent, then re-raise so the child
        # exits non-zero; swallowing here would make a dead tenant look
        # like an idle one.
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        raise
    finally:
        conn.close()


def _light_stats(manager: WorkloadManager) -> dict:
    """The periodic relay payload: counters only, never samples."""
    counters = manager.queue.counters()
    return {
        "tenant": manager.tenant,
        "state": manager.state,
        "samples": len(manager.results),
        "postponed": manager.results.postponed,
        "queue_depth": counters["depth"],
        "taken": counters["taken"],
    }


class _TenantHandle:
    """Parent-side state for one tenant child."""

    __slots__ = ("spec", "process", "conn", "relay", "results", "report",
                 "error", "stats", "ready")

    def __init__(self, spec: TenantSpec, process, conn) -> None:
        self.spec = spec
        self.process = process
        self.conn = conn
        self.relay: Optional[threading.Thread] = None
        self.results = Results()
        self.report: Optional[dict] = None
        self.error: Optional[str] = None
        self.stats: dict = {}
        self.ready = False


class ProcessExecutor:
    """Runs each tenant's worker pool in its own OS process.

    Mirrors the coordinator API (``add_tenant`` / ``run`` /
    ``per_tenant_results`` / ``combined_results``) so multi-tenant
    drivers can switch substrates without restructuring.
    """

    def __init__(self, stats_interval: float = 1.0) -> None:
        # fork inherits the parent's imports (no re-exec, ~10x faster
        # startup) and keeps closures picklable-free; fall back to the
        # platform default (spawn) where fork is unavailable.
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self.stats_interval = stats_interval
        self._tenants: list[_TenantHandle] = []
        self.last_run_report: dict = {}

    def add_tenant(self, spec: TenantSpec) -> TenantSpec:
        if any(h.spec.config.tenant == spec.config.tenant
               for h in self._tenants):
            raise ConfigurationError(
                f"duplicate tenant name {spec.config.tenant!r}")
        spec.stats_interval = spec.stats_interval or self.stats_interval
        self._tenants.append(_TenantHandle(spec, None, None))
        return spec

    # -- run -------------------------------------------------------------

    def run(self, timeout: Optional[float] = None,
            ready_timeout: float = 120.0) -> dict:
        """Load all tenants, release them together, collect results.

        The ready/go barrier guarantees data loading (which can dwarf the
        measured phase) never overlaps any tenant's measurement window.
        """
        if not self._tenants:
            raise ConfigurationError("no tenants added")
        for handle in self._tenants:
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_tenant_main, args=(handle.spec, child_conn),
                name=f"repro-{handle.spec.config.tenant}", daemon=True)
            handle.process = process
            handle.conn = parent_conn
            process.start()
            child_conn.close()

        # Barrier: wait until every tenant has loaded.
        for handle in self._tenants:
            if not handle.conn.poll(ready_timeout):
                self.stop()
                raise ConfigurationError(
                    f"tenant {handle.spec.config.tenant!r} did not become "
                    f"ready within {ready_timeout}s")
            kind, payload = handle.conn.recv()
            if kind == "error":
                self.stop()
                raise ConfigurationError(
                    f"tenant {handle.spec.config.tenant!r} failed to "
                    f"load: {payload}")
            handle.ready = True

        for handle in self._tenants:
            handle.conn.send(("go", timeout))
            relay = threading.Thread(
                target=self._relay_loop, args=(handle,),
                name=f"relay-{handle.spec.config.tenant}", daemon=True)
            handle.relay = relay
            relay.start()

        join_timeout = (timeout + 30.0) if timeout else None
        for handle in self._tenants:
            assert handle.relay is not None
            handle.relay.join(join_timeout)
            handle.process.join(5.0)

        leaked = [h.spec.config.tenant for h in self._tenants
                  if h.process.is_alive()]
        errors = {h.spec.config.tenant: h.error
                  for h in self._tenants if h.error}
        report: dict = {
            "tenants": len(self._tenants),
            "per_tenant": {h.spec.config.tenant: h.report
                           for h in self._tenants},
            "leaked_processes": leaked,
            "errors": errors,
            "ok": not leaked and not errors,
        }
        if leaked:
            self.stop()
            report["error"] = (
                f"{len(leaked)} tenant process(es) still alive after "
                f"join: {leaked}")
        elif errors:
            report["error"] = f"tenant failures: {errors}"
        self.last_run_report = report
        return report

    def _relay_loop(self, handle: _TenantHandle) -> None:
        conn = handle.conn
        while True:
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                if handle.report is None and handle.error is None:
                    handle.error = "tenant pipe closed before 'done'"
                return
            if kind == "stats":
                handle.stats = payload
            elif kind == "samples":
                handle.results.record_batch(payload)
            elif kind == "done":
                handle.report = payload
                handle.results.record_postponed(payload["postponed"])
                return
            elif kind == "error":
                handle.error = payload
                return

    def stop(self) -> None:
        """Terminate all tenant processes (hard stop)."""
        for handle in self._tenants:
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(2.0)

    # -- reporting --------------------------------------------------------

    def live_stats(self) -> dict[str, dict]:
        """Latest periodic relay payload per tenant."""
        return {h.spec.config.tenant: dict(h.stats)
                for h in self._tenants if h.stats}

    def per_tenant_results(self) -> dict[str, Results]:
        return {h.spec.config.tenant: h.results for h in self._tenants}

    def combined_results(self) -> Results:
        return merge(self.per_tenant_results().values())
