"""Driver core: workload manager, rate/mixture control, workers, results."""

from .benchmark import (BenchmarkModule, CLASS_FEATURE, CLASS_TRANSACTIONAL,
                        CLASS_WEB)
from .collector import StatisticsCollector
from .config import WorkloadConfiguration
from .executors import (SimulatedExecutor, ThreadedExecutor,
                        default_take_batch)
from .manager import WorkloadManager
from .multitenant import MultiTenantCoordinator, Tenant
from .procexec import ProcessExecutor, TenantSpec
from .phase import (ARRIVAL_EXPONENTIAL, ARRIVAL_UNIFORM, Phase,
                    RATE_DISABLED, RATE_UNLIMITED, UNLIMITED_RATE_CONSTANT,
                    normalize_weights)
from .procedure import Procedure, UserAbort
from .rates import ArrivalSchedule
from .replay import (phases_from_csv, phases_from_results,
                     phases_from_series)
from .requestqueue import (POLICY_BACKLOG, POLICY_CAP, Request,
                           RequestQueue, default_shards)
from .results import (DirectRecorder, LatencySample, Results, SampleBuffer,
                      STATUS_ABORTED, STATUS_ERROR, STATUS_OK, merge,
                      percentile)

__all__ = [
    "BenchmarkModule", "CLASS_FEATURE", "CLASS_TRANSACTIONAL", "CLASS_WEB",
    "StatisticsCollector", "WorkloadConfiguration",
    "SimulatedExecutor", "ThreadedExecutor", "default_take_batch",
    "WorkloadManager", "MultiTenantCoordinator", "Tenant",
    "ProcessExecutor", "TenantSpec",
    "default_shards", "SampleBuffer", "DirectRecorder",
    "ARRIVAL_EXPONENTIAL", "ARRIVAL_UNIFORM", "Phase",
    "RATE_DISABLED", "RATE_UNLIMITED", "UNLIMITED_RATE_CONSTANT",
    "normalize_weights", "Procedure", "UserAbort", "ArrivalSchedule",
    "phases_from_csv", "phases_from_results", "phases_from_series",
    "POLICY_BACKLOG", "POLICY_CAP", "Request", "RequestQueue",
    "LatencySample", "Results", "STATUS_ABORTED", "STATUS_ERROR",
    "STATUS_OK", "merge", "percentile",
]
