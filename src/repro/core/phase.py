"""Workload phases: the unit of OLTP-Bench execution control.

A phase fixes (1) a target transaction rate, (2) a transaction mixture, and
(3) a duration in seconds (paper §2.1).  Phases also carry the arrival
interleaving (uniform or exponential within each second) and an optional
per-request think time, matching the knobs the Workload Manager honours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from ..errors import ConfigurationError
from ..rand import DiscreteDistribution

#: Rate sentinel: open loop at a large configurable constant (paper §2.2.1).
RATE_UNLIMITED = "unlimited"
#: Rate sentinel: rate control off entirely — pure closed loop.
RATE_DISABLED = "disabled"

#: The "large configurable constant" used for unlimited arrivals.
UNLIMITED_RATE_CONSTANT = 50_000.0

ARRIVAL_UNIFORM = "uniform"
ARRIVAL_EXPONENTIAL = "exponential"


@dataclass(frozen=True)
class Phase:
    """One execution phase of a workload."""

    duration: float
    rate: object = RATE_UNLIMITED  # float tps | RATE_UNLIMITED | RATE_DISABLED
    weights: Mapping[str, float] = field(default_factory=dict)
    arrival: str = ARRIVAL_UNIFORM
    think_time: float = 0.0  # seconds a worker sleeps after each txn
    #: OLTP-Bench's <active_terminals>: only the first N workers execute
    #: during this phase (None = all configured workers).
    active_workers: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("phase duration must be positive")
        if self.arrival not in (ARRIVAL_UNIFORM, ARRIVAL_EXPONENTIAL):
            raise ConfigurationError(
                f"unknown arrival distribution {self.arrival!r}")
        if self.think_time < 0:
            raise ConfigurationError("think_time must be non-negative")
        if self.active_workers is not None and self.active_workers <= 0:
            raise ConfigurationError("active_workers must be positive")
        self._validate_rate(self.rate)
        if self.weights:
            if any(w < 0 for w in self.weights.values()):
                raise ConfigurationError("mixture weights must be >= 0")
            if sum(self.weights.values()) <= 0:
                raise ConfigurationError("mixture weights must not all be 0")

    @staticmethod
    def _validate_rate(rate: object) -> None:
        if rate in (RATE_UNLIMITED, RATE_DISABLED):
            return
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise ConfigurationError(f"invalid rate {rate!r}")
        if rate <= 0:
            raise ConfigurationError("rate must be positive")

    # -- derived views ---------------------------------------------------

    @property
    def is_rate_limited(self) -> bool:
        return self.rate not in (RATE_UNLIMITED, RATE_DISABLED)

    @property
    def is_closed_loop(self) -> bool:
        return self.rate == RATE_DISABLED

    @property
    def effective_rate(self) -> float:
        """Arrivals per second fed to the request queue."""
        if self.rate == RATE_UNLIMITED:
            return UNLIMITED_RATE_CONSTANT
        if self.rate == RATE_DISABLED:
            raise ConfigurationError(
                "closed-loop phases have no arrival rate")
        return float(self.rate)

    def mixture(self) -> DiscreteDistribution:
        if not self.weights:
            raise ConfigurationError("phase has no transaction weights")
        names = list(self.weights)
        return DiscreteDistribution(names, [self.weights[n] for n in names])

    def with_rate(self, rate: object) -> "Phase":
        self._validate_rate(rate)
        return replace(self, rate=rate)

    def with_weights(self, weights: Mapping[str, float]) -> "Phase":
        return replace(self, weights=dict(weights))

    def describe(self) -> str:
        rate = (self.rate if isinstance(self.rate, str)
                else f"{float(self.rate):g} tps")
        label = f" {self.name!r}" if self.name else ""
        return (f"Phase{label}: {self.duration:g}s @ {rate}, "
                f"{self.arrival} arrivals, {len(self.weights)} txn types")


def normalize_weights(weights: Mapping[str, float]) -> dict[str, float]:
    """Scale weights so they sum to 100 (OLTP-Bench convention)."""
    total = sum(weights.values())
    if total <= 0:
        raise ConfigurationError("weights must sum to a positive value")
    return {name: 100.0 * w / total for name, w in weights.items()}
