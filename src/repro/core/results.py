"""Result collection: per-transaction samples and aggregate views.

Every executed request yields one :class:`LatencySample`.  The
:class:`Results` container aggregates them into the numbers OLTP-Bench
reports: throughput over windows, latency percentiles per transaction type,
and abort/error breakdowns.  The trace analyzer (``repro.trace``) consumes
the same samples for time-series views.

Each sample is also fed exactly once into a
:class:`~repro.metrics.StreamingMetrics` (``results.metrics``), which the
control-API feedback path queries in O(bins) instead of rescanning this
list.  The batch aggregate views below remain the ground truth the
streaming layer is tested against.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..metrics import StreamingMetrics

STATUS_OK = "ok"
STATUS_ABORTED = "aborted"
STATUS_ERROR = "error"

PERCENTILES = (25.0, 50.0, 75.0, 90.0, 95.0, 99.0)


@dataclass(frozen=True)
class LatencySample:
    """Outcome of one transaction request.

    ``start`` is the request's scheduled arrival time; ``queue_delay`` the
    time it waited in the central queue; ``latency`` the execution time
    (dequeue to completion), matching OLTP-Bench's reported latency.
    """

    txn_name: str
    start: float
    queue_delay: float
    latency: float
    status: str = STATUS_OK
    worker_id: int = 0
    tenant: str = "tenant-0"

    @property
    def end(self) -> float:
        return self.start + self.queue_delay + self.latency

    @property
    def response_time(self) -> float:
        """Queueing delay plus execution time (open-loop response time)."""
        return self.queue_delay + self.latency


class Results:
    """Thread-safe accumulator of latency samples."""

    def __init__(self, metrics: Optional[StreamingMetrics] = None) -> None:
        self._lock = threading.Lock()
        self._samples: list[LatencySample] = []
        self._postponed = 0  # requests the queue shed to hold the rate cap
        self.metrics = metrics or StreamingMetrics()

    def record(self, sample: LatencySample) -> None:
        with self._lock:
            self._samples.append(sample)
        self.metrics.observe(sample.end, sample.txn_name, sample.latency,
                             sample.status)

    def record_postponed(self, count: int = 1) -> None:
        with self._lock:
            self._postponed += count
        self.metrics.record_postponed(count)

    @property
    def postponed(self) -> int:
        """Shed-request count, read under this result's lock."""
        with self._lock:
            return self._postponed

    def samples(self) -> list[LatencySample]:
        with self._lock:
            return list(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    # -- aggregate views ----------------------------------------------------

    def count(self, status: Optional[str] = None,
              txn_name: Optional[str] = None) -> int:
        return sum(1 for s in self.samples()
                   if (status is None or s.status == status)
                   and (txn_name is None or s.txn_name == txn_name))

    def committed(self) -> int:
        return self.count(STATUS_OK)

    def aborted(self) -> int:
        return self.count(STATUS_ABORTED)

    def abort_rate(self) -> float:
        total = len(self)
        return self.aborted() / total if total else 0.0

    def duration(self) -> float:
        samples = self.samples()
        if not samples:
            return 0.0
        start = min(s.start for s in samples)
        end = max(s.end for s in samples)
        return max(0.0, end - start)

    def throughput(self, window: Optional[tuple[float, float]] = None) -> float:
        """Committed transactions per second, optionally over a window."""
        samples = [s for s in self.samples() if s.status == STATUS_OK]
        if window is not None:
            lo, hi = window
            samples = [s for s in samples if lo <= s.end < hi]
            span = hi - lo
        else:
            span = self.duration()
        if span <= 0:
            return 0.0
        return len(samples) / span

    def per_second_throughput(self) -> list[tuple[int, int]]:
        """Sorted (second, committed count) pairs — the game's altitude."""
        buckets: dict[int, int] = {}
        for sample in self.samples():
            if sample.status == STATUS_OK:
                # floor, not int(): int() truncates toward zero, so a
                # sample ending at virtual time -0.5 would land in
                # second 0 instead of -1.
                second = math.floor(sample.end)
                buckets[second] = buckets.get(second, 0) + 1
        return sorted(buckets.items())

    def latencies(self, txn_name: Optional[str] = None,
                  status: str = STATUS_OK) -> list[float]:
        return [s.latency for s in self.samples()
                if s.status == status
                and (txn_name is None or s.txn_name == txn_name)]

    def latency_percentiles(self, txn_name: Optional[str] = None
                            ) -> dict[str, float]:
        values = sorted(self.latencies(txn_name))
        if not values:
            return {}
        summary = {"min": values[0], "max": values[-1],
                   "avg": sum(values) / len(values)}
        for pct in PERCENTILES:
            summary[f"p{pct:g}"] = percentile(values, pct)
        return summary

    def txn_names(self) -> list[str]:
        return sorted({s.txn_name for s in self.samples()})

    def summary(self) -> dict[str, object]:
        """A compact run report, one row per transaction type."""
        per_txn = {}
        for name in self.txn_names():
            per_txn[name] = {
                "committed": self.count(STATUS_OK, name),
                "aborted": self.count(STATUS_ABORTED, name),
                "errors": self.count(STATUS_ERROR, name),
                "latency": self.latency_percentiles(name),
            }
        return {
            "total": len(self),
            "committed": self.committed(),
            "aborted": self.aborted(),
            "postponed": self.postponed,
            "throughput": self.throughput(),
            "per_txn": per_txn,
        }


def percentile(sorted_values: list[float], pct: float) -> float:
    """Linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def merge(results: Iterable[Results]) -> Results:
    """Combine several Results containers (e.g. multi-tenant runs).

    ``samples()`` and the ``postponed`` property both read under the
    source result's lock, so merging is safe against concurrent
    recording; replaying through ``record()`` rebuilds the merged
    streaming metrics as a side effect.
    """
    merged = Results()
    for result in results:
        for sample in result.samples():
            merged.record(sample)
        merged.record_postponed(result.postponed)
    return merged
