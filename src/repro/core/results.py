"""Result collection: per-transaction samples and aggregate views.

Every executed request yields one :class:`LatencySample`.  The
:class:`Results` container aggregates them into the numbers OLTP-Bench
reports: throughput over windows, latency percentiles per transaction type,
and abort/error breakdowns.  The trace analyzer (``repro.trace``) consumes
the same samples for time-series views.

Each sample is also fed exactly once into a
:class:`~repro.metrics.StreamingMetrics` (``results.metrics``), which the
control-API feedback path queries in O(bins) instead of rescanning this
list.  The batch aggregate views below remain the ground truth the
streaming layer is tested against.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Optional, Sequence

from ..metrics import StreamingMetrics

STATUS_OK = "ok"
STATUS_ABORTED = "aborted"
STATUS_ERROR = "error"

PERCENTILES = (25.0, 50.0, 75.0, 90.0, 95.0, 99.0)


class LatencySample:
    """Outcome of one transaction request.

    ``start`` is the request's scheduled arrival time; ``queue_delay`` the
    time it waited in the central queue; ``latency`` the execution time
    (dequeue to completion), matching OLTP-Bench's reported latency.

    A hand-rolled ``__slots__`` class rather than a frozen dataclass: one
    instance is built per executed transaction, and the frozen-dataclass
    ``object.__setattr__``-per-field constructor costs ~1µs more per
    sample than plain slot assignment, which is real money on the batched
    driver hot path (``benchmarks/bench_queue_scaling.py``).
    """

    __slots__ = ("txn_name", "start", "queue_delay", "latency", "status",
                 "worker_id", "tenant", "end")

    def __init__(self, txn_name: str, start: float, queue_delay: float,
                 latency: float, status: str = STATUS_OK,
                 worker_id: int = 0, tenant: str = "tenant-0") -> None:
        self.txn_name = txn_name
        self.start = start
        self.queue_delay = queue_delay
        self.latency = latency
        self.status = status
        self.worker_id = worker_id
        self.tenant = tenant
        #: Completion time; precomputed because the recording pipeline
        #: (buffer epoch check, window ingest) reads it several times.
        self.end = start + queue_delay + latency

    def _key(self) -> tuple:
        return (self.txn_name, self.start, self.queue_delay, self.latency,
                self.status, self.worker_id, self.tenant)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencySample):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"LatencySample(txn_name={self.txn_name!r}, "
                f"start={self.start!r}, queue_delay={self.queue_delay!r}, "
                f"latency={self.latency!r}, status={self.status!r}, "
                f"worker_id={self.worker_id!r}, tenant={self.tenant!r})")

    @property
    def response_time(self) -> float:
        """Queueing delay plus execution time (open-loop response time)."""
        return self.queue_delay + self.latency


class Results:
    """Thread-safe accumulator of latency samples."""

    def __init__(self, metrics: Optional[StreamingMetrics] = None) -> None:
        self._lock = threading.Lock()
        self._samples: list[LatencySample] = []
        self._postponed = 0  # requests the queue shed to hold the rate cap
        self._batches = 0  # record_batch calls (recorder flush telemetry)
        self.metrics = metrics or StreamingMetrics()

    def record(self, sample: LatencySample) -> None:
        with self._lock:
            self._samples.append(sample)
        self.metrics.observe(sample.end, sample.txn_name, sample.latency,
                             sample.status)

    def record_batch(self, samples: Sequence[LatencySample]) -> None:
        """Fold a worker-local buffer in: one list extend, one lock pass.

        The epoch-flush target of :class:`SampleBuffer` — and the
        building block of :func:`merge`, which previously replayed
        every sample through :meth:`record` (one results-lock and one
        metrics-lock acquisition *per sample*).
        """
        if not samples:
            return
        with self._lock:
            self._samples.extend(samples)
            self._batches += 1
        self.metrics.observe_batch(samples)

    def buffered(self, capacity: int = 256,
                 interval: float = 0.25) -> "SampleBuffer":
        """A worker-local buffering recorder flushing into this container."""
        return SampleBuffer(self, capacity=capacity, interval=interval)

    def recorder_stats(self) -> dict[str, int]:
        """Batched-recording telemetry for the metrics payload."""
        with self._lock:
            return {"sample_batches": self._batches,
                    "samples": len(self._samples)}

    def record_postponed(self, count: int = 1) -> None:
        with self._lock:
            self._postponed += count
        self.metrics.record_postponed(count)

    @property
    def postponed(self) -> int:
        """Shed-request count, read under this result's lock."""
        with self._lock:
            return self._postponed

    def samples(self) -> list[LatencySample]:
        with self._lock:
            return list(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    # -- aggregate views ----------------------------------------------------

    def count(self, status: Optional[str] = None,
              txn_name: Optional[str] = None) -> int:
        return sum(1 for s in self.samples()
                   if (status is None or s.status == status)
                   and (txn_name is None or s.txn_name == txn_name))

    def committed(self) -> int:
        return self.count(STATUS_OK)

    def aborted(self) -> int:
        return self.count(STATUS_ABORTED)

    def abort_rate(self) -> float:
        total = len(self)
        return self.aborted() / total if total else 0.0

    def duration(self) -> float:
        samples = self.samples()
        if not samples:
            return 0.0
        start = min(s.start for s in samples)
        end = max(s.end for s in samples)
        return max(0.0, end - start)

    def throughput(self, window: Optional[tuple[float, float]] = None) -> float:
        """Committed transactions per second, optionally over a window."""
        samples = [s for s in self.samples() if s.status == STATUS_OK]
        if window is not None:
            lo, hi = window
            samples = [s for s in samples if lo <= s.end < hi]
            span = hi - lo
        else:
            span = self.duration()
        if span <= 0:
            return 0.0
        return len(samples) / span

    def per_second_throughput(self) -> list[tuple[int, int]]:
        """Sorted (second, committed count) pairs — the game's altitude."""
        buckets: dict[int, int] = {}
        for sample in self.samples():
            if sample.status == STATUS_OK:
                # floor, not int(): int() truncates toward zero, so a
                # sample ending at virtual time -0.5 would land in
                # second 0 instead of -1.
                second = math.floor(sample.end)
                buckets[second] = buckets.get(second, 0) + 1
        return sorted(buckets.items())

    def latencies(self, txn_name: Optional[str] = None,
                  status: str = STATUS_OK) -> list[float]:
        return [s.latency for s in self.samples()
                if s.status == status
                and (txn_name is None or s.txn_name == txn_name)]

    def latency_percentiles(self, txn_name: Optional[str] = None
                            ) -> dict[str, float]:
        values = sorted(self.latencies(txn_name))
        if not values:
            return {}
        summary = {"min": values[0], "max": values[-1],
                   "avg": sum(values) / len(values)}
        for pct in PERCENTILES:
            summary[f"p{pct:g}"] = percentile(values, pct)
        return summary

    def txn_names(self) -> list[str]:
        return sorted({s.txn_name for s in self.samples()})

    def summary(self) -> dict[str, object]:
        """A compact run report, one row per transaction type."""
        per_txn = {}
        for name in self.txn_names():
            per_txn[name] = {
                "committed": self.count(STATUS_OK, name),
                "aborted": self.count(STATUS_ABORTED, name),
                "errors": self.count(STATUS_ERROR, name),
                "latency": self.latency_percentiles(name),
            }
        return {
            "total": len(self),
            "committed": self.committed(),
            "aborted": self.aborted(),
            "postponed": self.postponed,
            "throughput": self.throughput(),
            "per_txn": per_txn,
        }


class SampleBuffer:
    """Worker-local sample buffer: per-sample appends, epoch flushes.

    The seed driver acquired the results lock *and* the metrics lock for
    every completed transaction; with 32 workers on one machine that per-
    sample lock traffic is the driver's own bottleneck (RP009 now rejects
    it statically).  A worker owns one ``SampleBuffer``, calls :meth:`add`
    per transaction (a plain list append), and the buffer flushes into
    :meth:`Results.record_batch` when it reaches ``capacity`` samples or
    when ``interval`` seconds of *sample time* have passed since the last
    flush — no extra clock reads on the hot path, because the sample's own
    ``end`` timestamp drives the epoch.

    Not thread-safe by design: one buffer per worker thread.  The owner
    must call :meth:`flush` when idling, pausing, or exiting so no tail
    samples are stranded.
    """

    __slots__ = ("_results", "_buffer", "_capacity", "_interval", "_last")

    def __init__(self, results: Results, capacity: int = 256,
                 interval: float = 0.25) -> None:
        if capacity < 1:
            raise ValueError("SampleBuffer capacity must be >= 1")
        self._results = results
        self._buffer: list[LatencySample] = []
        self._capacity = capacity
        self._interval = interval
        self._last: Optional[float] = None

    def add(self, sample: LatencySample) -> None:
        buffer = self._buffer
        buffer.append(sample)
        if self._last is None:
            self._last = sample.end
        if len(buffer) >= self._capacity or \
                sample.end - self._last >= self._interval:
            self.flush()

    def flush(self) -> int:
        """Publish buffered samples; returns how many were flushed."""
        buffer = self._buffer
        if not buffer:
            return 0
        self._last = buffer[-1].end
        self._buffer = []
        self._results.record_batch(buffer)
        return len(buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class DirectRecorder:
    """Unbuffered recorder with the :class:`SampleBuffer` interface.

    The seed-compatibility mode of the executors (``buffer_samples=False``)
    and the substrate for apples-to-apples overhead benchmarks: every
    :meth:`add` is an immediate per-sample :meth:`Results.record`.
    """

    __slots__ = ("_results",)

    def __init__(self, results: Results) -> None:
        self._results = results

    def add(self, sample: LatencySample) -> None:
        self._results.record(sample)

    def flush(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0


def percentile(sorted_values: list[float], pct: float) -> float:
    """Linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def merge(results: Iterable[Results]) -> Results:
    """Combine several Results containers (e.g. multi-tenant runs).

    ``samples()`` and the ``postponed`` property both read under the
    source result's lock, so merging is safe against concurrent
    recording.  Each source folds in through one ``record_batch`` call
    — a single list extend and one metrics-lock pass per container,
    instead of replaying every sample through ``record()`` (which made
    merging N tenants of S samples cost 2·N·S lock acquisitions).
    """
    merged = Results()
    for result in results:
        merged.record_batch(result.samples())
        merged.record_postponed(result.postponed)
    return merged
