"""SQL dialect management (paper §2.1).

OLTP-Bench handles portability across DBMS SQL dialects with *human-written
dialect translation*: experts contribute per-system variants of DML and DDL
statements rather than relying on automatic rewriting.  This module
reproduces that architecture:

* a :class:`StatementCatalog` holds each benchmark's canonical statements
  keyed by name, plus per-DBMS overrides;
* :func:`translate_ddl` applies the mechanical type-name translations each
  simulated personality would need (e.g. ``TINYINT`` does not exist on
  PostgreSQL), mirroring the kind of edits the human-written dialect files
  contain.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError

#: Per-dialect type-name rewrites, applied wholesale to DDL.
_TYPE_REWRITES: dict[str, dict[str, str]] = {
    "postgres": {
        "TINYINT": "SMALLINT",
        "DATETIME": "TIMESTAMP",
        "DOUBLE": "DOUBLE PRECISION",
        "LONGVARCHAR": "TEXT",
    },
    "oracle": {
        "TINYINT": "NUMBER(3)",
        "SMALLINT": "NUMBER(5)",
        "BIGINT": "NUMBER(19)",
        "VARCHAR": "VARCHAR2",
        "TIMESTAMP": "DATE",
    },
    "mysql": {
        "CLOB": "LONGTEXT",
    },
    "derby": {
        "TINYINT": "SMALLINT",
        "DATETIME": "TIMESTAMP",
    },
    "inmem": {},
}


def dialect_names() -> list[str]:
    return sorted(_TYPE_REWRITES)


def translate_ddl(sql: str, dbms: str) -> str:
    """Rewrite type names in a DDL statement for the target dialect."""
    try:
        rewrites = _TYPE_REWRITES[dbms]
    except KeyError:
        raise ConfigurationError(f"unknown dialect {dbms!r}") from None
    for source, target in rewrites.items():
        sql = re.sub(rf"\b{source}\b", target, sql, flags=re.IGNORECASE)
    return sql


@dataclass
class StatementCatalog:
    """Named canonical statements with per-DBMS expert overrides."""

    benchmark: str
    _canonical: dict[str, str] = field(default_factory=dict)
    _overrides: dict[tuple[str, str], str] = field(default_factory=dict)

    def define(self, name: str, sql: str) -> None:
        """Register the canonical form of a named statement."""
        if name in self._canonical:
            raise ConfigurationError(
                f"statement {name!r} already defined for "
                f"{self.benchmark!r}")
        self._canonical[name] = sql

    def override(self, dbms: str, name: str, sql: str) -> None:
        """Register an expert-written per-DBMS variant (paper §2.1)."""
        if name not in self._canonical:
            raise ConfigurationError(
                f"cannot override unknown statement {name!r}")
        if dbms not in _TYPE_REWRITES:
            raise ConfigurationError(f"unknown dialect {dbms!r}")
        self._overrides[(dbms, name)] = sql

    def resolve(self, name: str, dbms: str = "inmem") -> str:
        """The statement text to execute on the given DBMS."""
        override = self._overrides.get((dbms, name))
        if override is not None:
            return override
        try:
            return self._canonical[name]
        except KeyError:
            raise ConfigurationError(
                f"benchmark {self.benchmark!r} has no statement "
                f"{name!r}") from None

    def statement_names(self) -> list[str]:
        return sorted(self._canonical)

    def dialects_overridden(self, name: str) -> list[str]:
        return sorted(dbms for (dbms, stmt) in self._overrides
                      if stmt == name)
