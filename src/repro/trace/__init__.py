"""Trace output and analysis (Fig. 1: trace.txt + Trace Analyzer)."""

from .writer import TraceWriter, read_trace
from .analyzer import TraceAnalyzer, TrackingReport

__all__ = ["TraceWriter", "read_trace", "TraceAnalyzer", "TrackingReport"]
