"""Trace writer: persist per-transaction samples as CSV (``trace.txt``).

One row per request, matching OLTP-Bench's raw results files so external
tooling (or the bundled analyzer) can recompute any aggregate.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from ..core.results import LatencySample, Results

FIELDS = ["txn_name", "start", "queue_delay", "latency", "status",
          "worker_id", "tenant"]


class TraceWriter:
    """Streams samples to a CSV file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "w", newline="")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(FIELDS)

    def write(self, sample: LatencySample) -> None:
        self._writer.writerow([
            sample.txn_name, f"{sample.start:.6f}",
            f"{sample.queue_delay:.6f}", f"{sample.latency:.6f}",
            sample.status, sample.worker_id, sample.tenant])

    def write_all(self, samples: Iterable[LatencySample]) -> int:
        count = 0
        for sample in samples:
            self.write(sample)
            count += 1
        return count

    def write_results(self, results: Results) -> int:
        return self.write_all(results.samples())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_trace(path: str | Path) -> Results:
    """Load a trace CSV back into a Results container."""
    results = Results()
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            results.record(LatencySample(
                txn_name=row["txn_name"],
                start=float(row["start"]),
                queue_delay=float(row["queue_delay"]),
                latency=float(row["latency"]),
                status=row["status"],
                worker_id=int(row["worker_id"]),
                tenant=row["tenant"]))
    return results
