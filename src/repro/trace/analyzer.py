"""Trace analyzer: windowed throughput, latency, and tracking metrics.

This is the quantitative core of the reproduction's experiments: given the
per-request samples of a run and the *target* rate series that was
requested, it computes how faithfully the framework delivered —
per-second throughput, rate-cap violations, tracking error against moving
targets (the game's challenges), and jitter (the Tunnel pass/fail
criterion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.results import Results, STATUS_OK, percentile


@dataclass(frozen=True)
class TrackingReport:
    """How well delivered throughput followed a moving target."""

    seconds: int
    mean_target: float
    mean_delivered: float
    mean_abs_error: float
    mean_rel_error: float
    max_overshoot: float  # max(delivered - target), >0 means cap violated
    within_tolerance_fraction: float

    def passed(self, tolerance: float = 0.15) -> bool:
        return self.within_tolerance_fraction >= 1.0 - tolerance


class TraceAnalyzer:
    """Aggregate views over one run's samples."""

    def __init__(self, results: Results) -> None:
        self.results = results

    # -- throughput series -------------------------------------------------

    def throughput_series(self, start: Optional[int] = None,
                          end: Optional[int] = None) -> list[tuple[int, int]]:
        """Committed transactions per whole second, gaps filled with 0.

        Prefers the streaming per-second counters (identical numbers,
        O(seconds) instead of O(samples)) while the run still fits the
        metrics ring; falls back to a full sample rescan otherwise.
        """
        metrics = self.results.metrics
        if metrics.series_complete():
            buckets = dict(metrics.throughput_series())
        else:
            buckets = dict(self.results.per_second_throughput())
        if not buckets:
            return []
        lo = start if start is not None else min(buckets)
        hi = end if end is not None else max(buckets) + 1
        return [(second, buckets.get(second, 0))
                for second in range(lo, hi)]

    def per_txn_series(self, txn_name: str) -> list[tuple[int, int]]:
        buckets: dict[int, int] = {}
        for sample in self.results.samples():
            if sample.status == STATUS_OK and sample.txn_name == txn_name:
                second = math.floor(sample.end)  # match the metrics ring
                buckets[second] = buckets.get(second, 0) + 1
        return sorted(buckets.items())

    # -- stability / jitter ---------------------------------------------------

    def jitter(self, window: Optional[tuple[int, int]] = None) -> float:
        """Coefficient of variation of per-second throughput.

        The Tunnel challenge fails DBMSs that "produce oscillating
        throughputs" — this is the number that decides it.
        """
        series = [count for _sec, count in self.throughput_series(
            *(window or (None, None)))]
        if len(series) < 2:
            return 0.0
        mean = sum(series) / len(series)
        if mean == 0:
            return float("inf")
        variance = sum((v - mean) ** 2 for v in series) / (len(series) - 1)
        return math.sqrt(variance) / mean

    # -- target tracking ----------------------------------------------------------

    def tracking(self, target_fn: Callable[[float], float],
                 start: int, end: int,
                 tolerance: float = 0.10) -> TrackingReport:
        """Compare delivered throughput to ``target_fn(second)``.

        ``target_fn`` maps a second to the requested rate at that time
        (e.g. a challenge's profile).  A second is "within tolerance" when
        delivered is within ``tolerance`` (relative) of the target.
        """
        series = self.throughput_series(start, end)
        if not series:
            raise ValueError("no samples in the requested window")
        abs_errors, rel_errors, overshoots = [], [], []
        within = 0
        targets = []
        for second, delivered in series:
            target = target_fn(second)
            targets.append(target)
            error = delivered - target
            abs_errors.append(abs(error))
            overshoots.append(error)
            if target > 0:
                rel = abs(error) / target
                rel_errors.append(rel)
                if rel <= tolerance:
                    within += 1
            elif delivered == 0:
                rel_errors.append(0.0)
                within += 1
            else:
                rel_errors.append(float("inf"))
        count = len(series)
        return TrackingReport(
            seconds=count,
            mean_target=sum(targets) / count,
            mean_delivered=sum(d for _s, d in series) / count,
            mean_abs_error=sum(abs_errors) / count,
            mean_rel_error=sum(rel_errors) / count,
            max_overshoot=max(overshoots),
            within_tolerance_fraction=within / count,
        )

    def rise_time(self, change_at: float, target: float,
                  tolerance: float = 0.10,
                  horizon: float = 30.0) -> Optional[float]:
        """Seconds until delivered throughput settles at a new target.

        Measures the demo's "system responsiveness": after a rate change
        at ``change_at``, how long until the per-second delivered rate
        first comes within ``tolerance`` (relative) of ``target``.
        Returns ``None`` if it never settles within ``horizon``.
        """
        start = int(change_at)
        for second, delivered in self.throughput_series(
                start, start + int(horizon)):
            if target == 0:
                if delivered == 0:
                    return second + 1 - change_at
                continue
            if abs(delivered - target) / target <= tolerance:
                return second + 1 - change_at
        return None

    def rate_cap_violations(self, cap: float,
                            window: Optional[tuple[int, int]] = None,
                            slack: float = 0.0) -> int:
        """Seconds where delivered throughput exceeded ``cap`` (+slack)."""
        return sum(1 for _sec, count in
                   self.throughput_series(*(window or (None, None)))
                   if count > cap + slack)

    # -- latency ---------------------------------------------------------------

    def latency_summary(self, txn_name: Optional[str] = None) -> dict:
        return self.results.latency_percentiles(txn_name)

    def queue_delay_percentile(self, pct: float) -> float:
        delays = sorted(s.queue_delay for s in self.results.samples())
        if not delays:
            return 0.0
        return percentile(delays, pct)

    # -- report ------------------------------------------------------------------

    def report(self) -> dict[str, object]:
        return {
            "summary": self.results.summary(),
            "jitter": self.jitter(),
            "series": self.throughput_series(),
        }
