"""BenchPress / OLTP-Bench reproduction.

A Python reimplementation of the OLTP-Bench database benchmarking testbed
and the BenchPress dynamic-workload-control demonstration (SIGMOD 2015):

* ``repro.engine`` — the in-memory DBMS substrate (SQL, locking, MVCC);
* ``repro.core`` — workload manager, rate control, phases, workers;
* ``repro.benchmarks`` — the 15 built-in benchmarks of paper Table 1;
* ``repro.api`` — the RESTful runtime control API;
* ``repro.monitor`` / ``repro.trace`` — server monitoring and results;
* ``repro.benchpress`` — the game: challenges, physics, sessions.
"""

__version__ = "1.0.0"
