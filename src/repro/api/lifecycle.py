"""Workload lifecycle over the control plane (v1 only).

:class:`WorkloadHost` lets a remote client drive the whole workload
lifecycle that previously required in-process wiring:

    POST   /v1/workloads                  create from a config body
    POST   /v1/workloads/<tenant>/start   begin threaded execution
    POST   /v1/workloads/<tenant>/stop    stop a running workload
    DELETE /v1/workloads/<tenant>         stop (if needed) and unregister

``ControlApi.register`` remains the in-process path: workloads wired up
directly (the game, benchmarks, tests) coexist with hosted ones in the
same registry, but only hosted workloads can be started or deleted over
HTTP — the host refuses lifecycle verbs for tenants it does not own
(409, the caller doesn't control that workload's executor).

Each started workload runs on its own :class:`ThreadedExecutor` driven
by a background thread, so ``start`` returns immediately and the
workload's phases unwind in real time; ``GET /v1/workloads/<tenant>/
status`` is the feedback loop.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional

from ..benchmarks import create_benchmark
from ..core.config import WorkloadConfiguration
from ..core.executors import ThreadedExecutor
from ..core.manager import (STATE_CREATED, STATE_RUNNING, WorkloadManager)
from ..engine.database import Database
from ..errors import ApiConflict, ApiError, ApiNotFound
from .control import ControlApi


class _Hosted:
    """One hosted workload: its manager plus the executor driving it."""

    def __init__(self, manager: WorkloadManager,
                 database: Database) -> None:
        self.manager = manager
        self.database = database
        self.executor: Optional[ThreadedExecutor] = None
        self.thread: Optional[threading.Thread] = None


class WorkloadHost:
    """Creates, starts, stops, and deletes workloads over the API."""

    def __init__(self, control: ControlApi) -> None:
        self.control = control
        self._lock = threading.Lock()
        self._hosted: dict[str, _Hosted] = {}

    # -- verbs ---------------------------------------------------------------

    def create(self, body: Mapping[str, object]) -> dict:
        """Build a workload from a configuration body and register it.

        The body is a :class:`WorkloadConfiguration` dict (``benchmark``,
        ``tenant``, ``phases``, ...).  The benchmark's data is loaded
        synchronously, so keep ``scale_factor`` modest for interactive
        use.
        """
        if not isinstance(body, Mapping):
            raise ApiError("workload body must be a configuration object")
        try:
            config = WorkloadConfiguration.from_dict(body)
        except Exception as exc:
            raise ApiError(str(exc)) from exc
        with self._lock:
            if config.tenant in self._hosted:
                raise ApiConflict(
                    f"tenant {config.tenant!r} already exists")
            try:
                database = Database(config.benchmark)
                bench = create_benchmark(
                    config.benchmark, database,
                    scale_factor=config.scale_factor, seed=config.seed)
                bench.load()
                manager = WorkloadManager(bench, config)
            except ApiError:
                raise
            except Exception as exc:
                raise ApiError(str(exc)) from exc
            # Registry may already hold an in-process tenant of this name.
            self.control.register(manager)
            self._hosted[config.tenant] = _Hosted(manager, database)
        return {"ok": True, "tenant": config.tenant,
                "state": manager.state,
                "benchmark": config.benchmark,
                "phases": len(config.phases)}

    def start(self, tenant: str) -> dict:
        with self._lock:
            hosted = self._hosted_for(tenant)
            manager = hosted.manager
            if manager.state == STATE_RUNNING:
                raise ApiConflict(f"tenant {tenant!r} is already running")
            if manager.state != STATE_CREATED:
                raise ApiConflict(
                    f"tenant {tenant!r} already ran to state "
                    f"{manager.state!r}; create a fresh workload")
            executor = ThreadedExecutor(hosted.database)
            executor.add_workload(manager)
            thread = threading.Thread(
                target=executor.run,
                kwargs={"timeout": manager.config.total_duration() + 30},
                name=f"host-{tenant}", daemon=True)
            hosted.executor = executor
            hosted.thread = thread
            thread.start()
        return {"ok": True, "tenant": tenant, "state": STATE_RUNNING}

    def stop(self, tenant: str) -> dict:
        with self._lock:
            hosted = self._hosted_for(tenant)
        self._halt(hosted)
        return {"ok": True, "tenant": tenant,
                "state": hosted.manager.state}

    def delete(self, tenant: str) -> dict:
        with self._lock:
            hosted = self._hosted_for(tenant)
            del self._hosted[tenant]
        self._halt(hosted)
        self.control.unregister(tenant)
        return {"ok": True, "tenant": tenant, "deleted": True}

    def list(self) -> dict:
        """Every registered tenant; hosted ones are marked as such."""
        with self._lock:
            hosted = set(self._hosted)
        workloads = []
        for tenant in self.control.tenants():
            manager = self.control._manager(tenant)
            workloads.append({
                "tenant": tenant,
                "benchmark": manager.benchmark.name,
                "state": manager.state,
                "hosted": tenant in hosted,
            })
        return {"workloads": workloads}

    # -- helpers -------------------------------------------------------------

    def _hosted_for(self, tenant: str) -> _Hosted:
        hosted = self._hosted.get(tenant)
        if hosted is None:
            if tenant in self.control.tenants():
                raise ApiConflict(
                    f"tenant {tenant!r} is registered in-process, not "
                    "hosted; lifecycle verbs only apply to workloads "
                    "created through POST /v1/workloads")
            raise ApiNotFound(f"no workload registered for tenant "
                              f"{tenant!r}")
        return hosted

    def _halt(self, hosted: _Hosted) -> None:
        hosted.manager.stop()
        if hosted.executor is not None:
            hosted.executor.stop()
        if hosted.thread is not None:
            hosted.thread.join(timeout=5.0)

    def shutdown(self) -> None:
        """Stop every hosted workload (server teardown)."""
        with self._lock:
            hosted = list(self._hosted.values())
        for item in hosted:
            self._halt(item)
