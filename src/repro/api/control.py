"""In-process control facade: the single implementation behind the REST
endpoints and the game's command stream."""

from __future__ import annotations

from typing import Mapping, Optional

from ..benchmarks import table1
from ..core.manager import WorkloadManager
from ..errors import ApiConflict, ApiError, ApiNotFound


class ControlApi:
    """Registry of live workloads plus the control verbs of the paper."""

    def __init__(self) -> None:
        self._workloads: dict[str, WorkloadManager] = {}

    # -- registry ------------------------------------------------------------

    def register(self, manager: WorkloadManager) -> None:
        tenant = manager.tenant
        if tenant in self._workloads:
            raise ApiConflict(f"tenant {tenant!r} already registered")
        self._workloads[tenant] = manager

    def unregister(self, tenant: str) -> None:
        self._workloads.pop(tenant, None)

    def tenants(self) -> list[str]:
        return sorted(self._workloads)

    def _manager(self, tenant: str) -> WorkloadManager:
        try:
            return self._workloads[tenant]
        except KeyError:
            raise ApiNotFound(f"no workload registered for tenant "
                              f"{tenant!r}") from None

    # -- control verbs ----------------------------------------------------------

    def set_rate(self, tenant: str, rate: object) -> dict:
        """Throttle the request rate (tps, "unlimited", or "disabled")."""
        manager = self._manager(tenant)
        try:
            manager.set_rate(rate)
        except Exception as exc:
            raise ApiError(str(exc)) from exc
        return {"ok": True, "rate": manager.current_rate()}

    def set_weights(self, tenant: str,
                    weights: Mapping[str, float]) -> dict:
        manager = self._manager(tenant)
        try:
            manager.set_weights(weights)
        except Exception as exc:
            raise ApiError(str(exc)) from exc
        return {"ok": True, "weights": manager.current_weights()}

    def set_preset(self, tenant: str, preset: str) -> dict:
        manager = self._manager(tenant)
        try:
            manager.set_preset_mixture(preset)
        except Exception as exc:
            raise ApiError(str(exc)) from exc
        return {"ok": True, "weights": manager.current_weights()}

    def pause(self, tenant: str) -> dict:
        self._manager(tenant).pause()
        return {"ok": True, "paused": True}

    def resume(self, tenant: str) -> dict:
        self._manager(tenant).resume()
        return {"ok": True, "paused": False}

    def set_think_time(self, tenant: str, seconds: float) -> dict:
        manager = self._manager(tenant)
        try:
            manager.set_think_time(float(seconds))
        except Exception as exc:
            raise ApiError(str(exc)) from exc
        return {"ok": True, "think_time": manager.current_think_time()}

    def set_faults(self, tenant: str,
                   fields: Mapping[str, object]) -> dict:
        """Re-tune the tenant's fault-injection profile (partial PUT)."""
        manager = self._manager(tenant)
        if not isinstance(fields, Mapping):
            raise ApiError("faults body must be an object of profile "
                           "fields")
        try:
            manager.set_fault_profile(fields)
        except Exception as exc:
            raise ApiError(str(exc)) from exc
        return {"ok": True, "faults": manager.current_fault_profile()}

    def get_faults(self, tenant: str) -> dict:
        manager = self._manager(tenant)
        return {"faults": manager.current_fault_profile(),
                "injected": manager.faults.counters()}

    def set_resilience(self, tenant: str,
                       fields: Mapping[str, object]) -> dict:
        """Re-tune retry policies / circuit breaker (partial PUT)."""
        manager = self._manager(tenant)
        if not isinstance(fields, Mapping):
            raise ApiError("resilience body must be an object")
        try:
            manager.set_resilience(fields)
        except Exception as exc:
            raise ApiError(str(exc)) from exc
        return {"ok": True, "resilience": manager.current_resilience()}

    def get_resilience(self, tenant: str) -> dict:
        manager = self._manager(tenant)
        return {"resilience": manager.current_resilience(),
                "stats": manager.resilience.stats.snapshot()}

    # -- feedback -------------------------------------------------------------

    def status(self, tenant: str, now: Optional[float] = None,
               window: float = 5.0) -> dict:
        return self._manager(tenant).status(now, window)

    def all_status(self, now: Optional[float] = None) -> dict:
        return {tenant: manager.status(now)
                for tenant, manager in sorted(self._workloads.items())}

    def metrics(self, tenant: str, now: Optional[float] = None,
                window: float = 5.0) -> dict:
        """Streaming feedback: windowed throughput, latency quantiles,
        and queue accounting — O(bins), never rescans the sample list."""
        return self._manager(tenant).metrics(now, window)

    def all_metrics(self, now: Optional[float] = None,
                    window: float = 5.0) -> dict:
        return {tenant: manager.metrics(now, window)
                for tenant, manager in sorted(self._workloads.items())}

    def presets(self, tenant: str) -> dict:
        return self._manager(tenant).benchmark.preset_mixtures()

    def benchmarks(self) -> list[dict]:
        """Paper Table 1, exposed so UIs can render the selection screen."""
        return table1()
