"""The runtime control API (paper §2.2.4).

"We created a RESTful application programming interface (API) for
OLTP-Bench that exposes the ability to programmatically control its
execution at the runtime. This includes changing the current phase
parameters by throttling the throughput or changing the workload mixture.
In addition, this API also provides instantaneous feedback about the
current execution throughput and average latency per transaction type."

Three pieces:

* :class:`ControlApi` — the in-process facade over registered
  WorkloadManagers; the game drives this directly in simulated runs;
* :class:`ApiServer` — an HTTP/JSON server exposing the facade under the
  versioned ``/v1`` surface (legacy unversioned routes remain as
  deprecated aliases);
* :class:`WorkloadHost` — workload lifecycle (create/start/stop/delete)
  over HTTP, v1 only;
* :class:`ApiClient` — a Python client with the same method surface,
  speaking v1 with timeouts and connection-failure retries.
"""

from .control import ControlApi
from .lifecycle import WorkloadHost
from .server import ApiServer
from .client import ApiClient

__all__ = ["ControlApi", "ApiServer", "ApiClient", "WorkloadHost"]
