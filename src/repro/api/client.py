"""HTTP client for the control API, mirroring ControlApi's surface.

Code written against :class:`~repro.api.control.ControlApi` runs unchanged
against an :class:`ApiClient` pointed at a remote ApiServer — which is how
the threaded demo wires the game to a live OLTP-Bench process.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Mapping, Optional
from urllib.parse import urlparse

from ..errors import ApiError


class ApiClient:
    """Thin JSON-over-HTTP client for :class:`ApiServer`."""

    def __init__(self, url: str, timeout: float = 5.0) -> None:
        parsed = urlparse(url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ApiError(f"invalid API url {url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> object:
        conn = HTTPConnection(self._host, self._port, timeout=self._timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"null")
            if response.status >= 400:
                message = (data or {}).get("error", f"HTTP {response.status}")
                raise ApiError(message)
            return data
        finally:
            conn.close()

    # -- mirrored surface -------------------------------------------------------

    def tenants(self) -> list[str]:
        return self._request("GET", "/tenants")

    def benchmarks(self) -> list[dict]:
        return self._request("GET", "/benchmarks")

    def all_status(self) -> dict:
        return self._request("GET", "/status")

    def status(self, tenant: str) -> dict:
        return self._request("GET", f"/workloads/{tenant}/status")

    def presets(self, tenant: str) -> dict:
        return self._request("GET", f"/workloads/{tenant}/presets")

    def set_rate(self, tenant: str, rate: object) -> dict:
        return self._request("POST", f"/workloads/{tenant}/rate",
                             {"rate": rate})

    def set_weights(self, tenant: str,
                    weights: Mapping[str, float]) -> dict:
        return self._request("POST", f"/workloads/{tenant}/weights",
                             {"weights": dict(weights)})

    def set_preset(self, tenant: str, preset: str) -> dict:
        return self._request("POST", f"/workloads/{tenant}/preset",
                             {"preset": preset})

    def set_think_time(self, tenant: str, seconds: float) -> dict:
        return self._request("POST", f"/workloads/{tenant}/think_time",
                             {"seconds": seconds})

    def pause(self, tenant: str) -> dict:
        return self._request("POST", f"/workloads/{tenant}/pause")

    def resume(self, tenant: str) -> dict:
        return self._request("POST", f"/workloads/{tenant}/resume")
