"""HTTP client for the control API, mirroring ControlApi's surface.

Code written against :class:`~repro.api.control.ControlApi` runs unchanged
against an :class:`ApiClient` pointed at a remote ApiServer — which is how
the threaded demo wires the game to a live OLTP-Bench process.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Mapping, Optional
from urllib.parse import urlparse

from ..errors import ApiError, ApiMethodNotAllowed, ApiNotFound


def _window_query(window: Optional[float]) -> str:
    return "" if window is None else f"?window={window:g}"


class ApiClient:
    """Thin JSON-over-HTTP client for :class:`ApiServer`."""

    def __init__(self, url: str, timeout: float = 5.0) -> None:
        parsed = urlparse(url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ApiError(f"invalid API url {url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> object:
        conn = HTTPConnection(self._host, self._port, timeout=self._timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"null")
            if response.status >= 400:
                message = (data or {}).get("error", f"HTTP {response.status}")
                # Mirror the server's status-code semantics so callers can
                # distinguish "no such tenant" from "bad request".
                if response.status == 404:
                    raise ApiNotFound(message)
                if response.status == 405:
                    raise ApiMethodNotAllowed(message)
                raise ApiError(message)
            return data
        finally:
            conn.close()

    # -- mirrored surface -------------------------------------------------------

    def tenants(self) -> list[str]:
        return self._request("GET", "/tenants")

    def benchmarks(self) -> list[dict]:
        return self._request("GET", "/benchmarks")

    def all_status(self) -> dict:
        return self._request("GET", "/status")

    def status(self, tenant: str, now: Optional[float] = None,
               window: Optional[float] = None) -> dict:
        # ``now`` mirrors ControlApi's signature for drop-in use (e.g. by
        # the game loop) but is ignored remotely: the server's clock rules.
        return self._request("GET", f"/workloads/{tenant}/status"
                             + _window_query(window))

    def metrics(self, tenant: str, now: Optional[float] = None,
                window: Optional[float] = None) -> dict:
        """Streaming metrics: windowed throughput, latency quantiles,
        queue accounting.  ``now`` is accepted for ControlApi signature
        parity and ignored remotely."""
        return self._request("GET", f"/workloads/{tenant}/metrics"
                             + _window_query(window))

    def all_metrics(self, window: Optional[float] = None) -> dict:
        return self._request("GET", "/metrics" + _window_query(window))

    def presets(self, tenant: str) -> dict:
        return self._request("GET", f"/workloads/{tenant}/presets")

    def set_rate(self, tenant: str, rate: object) -> dict:
        return self._request("POST", f"/workloads/{tenant}/rate",
                             {"rate": rate})

    def set_weights(self, tenant: str,
                    weights: Mapping[str, float]) -> dict:
        return self._request("POST", f"/workloads/{tenant}/weights",
                             {"weights": dict(weights)})

    def set_preset(self, tenant: str, preset: str) -> dict:
        return self._request("POST", f"/workloads/{tenant}/preset",
                             {"preset": preset})

    def set_think_time(self, tenant: str, seconds: float) -> dict:
        return self._request("POST", f"/workloads/{tenant}/think_time",
                             {"seconds": seconds})

    def pause(self, tenant: str) -> dict:
        return self._request("POST", f"/workloads/{tenant}/pause")

    def resume(self, tenant: str) -> dict:
        return self._request("POST", f"/workloads/{tenant}/resume")
