"""HTTP client for the v1 control API, mirroring ControlApi's surface.

Code written against :class:`~repro.api.control.ControlApi` runs unchanged
against an :class:`ApiClient` pointed at a remote ApiServer — which is how
the threaded demo wires the game to a live OLTP-Bench process.

The client speaks the versioned ``/v1`` surface and parses its error
envelope (``{"error": {"code", "message"}}``), mapping status codes back
onto the :class:`~repro.errors.ApiError` hierarchy (404 →
:class:`ApiNotFound`, 405 → :class:`ApiMethodNotAllowed`, 409 →
:class:`ApiConflict`).

It also dogfoods the resilience layer: a
:class:`~repro.core.resilience.RetryPolicy` governs retries of
*connection-level* failures (refused, reset, timed out) with exponential
backoff.  HTTP error **responses** are never retried — a 4xx/5xx answer
means the server made a decision; only failing to reach the server at
all is transient.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Mapping, Optional
from urllib.parse import urlparse

from ..clock import Clock, RealClock
from ..core.resilience import RetryPolicy
from ..errors import (ApiConflict, ApiError, ApiMethodNotAllowed,
                      ApiNotFound)
from ..rand import make_rng

#: Connection-level failures worth retrying; an HTTP response — any
#: status — is never one of these.
_TRANSIENT = (ConnectionError, HTTPException, OSError, TimeoutError)


def _window_query(window: Optional[float]) -> str:
    return "" if window is None else f"?window={window:g}"


def _message_from(data: object, status: int) -> str:
    """Extract the error message from a v1 envelope (or legacy shape)."""
    if isinstance(data, dict):
        error = data.get("error")
        if isinstance(error, dict):  # v1 envelope
            return str(error.get("message", f"HTTP {status}"))
        if error is not None:  # legacy {"ok": false, "error": "..."}
            return str(error)
    return f"HTTP {status}"


class ApiClient:
    """JSON-over-HTTP client for :class:`ApiServer`'s v1 surface."""

    def __init__(self, url: str, timeout: float = 5.0,
                 retry: Optional[RetryPolicy] = None,
                 clock: Optional[Clock] = None,
                 seed: Optional[int] = None) -> None:
        parsed = urlparse(url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ApiError(f"invalid API url {url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout
        #: Connection-failure retry policy; default: 3 attempts with
        #: short exponential backoff.
        self._retry = retry or RetryPolicy(
            max_attempts=3, backoff_base=0.05, backoff_max=0.5)
        self._clock = clock or RealClock()
        self._rng = make_rng(seed, "api-client", self._host, self._port)

    # -- transport ----------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[dict]) -> object:
        conn = HTTPConnection(self._host, self._port, timeout=self._timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"null")
            if response.status >= 400:
                message = _message_from(data, response.status)
                # Mirror the server's status-code semantics so callers can
                # distinguish "no such tenant" from "bad request".
                if response.status == 404:
                    raise ApiNotFound(message)
                if response.status == 405:
                    raise ApiMethodNotAllowed(message)
                if response.status == 409:
                    raise ApiConflict(message)
                raise ApiError(message)
            return data
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> object:
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._request_once(method, path, body)
            except ApiError:
                raise
            except _TRANSIENT as exc:
                if attempts >= self._retry.max_attempts:
                    raise ApiError(
                        f"{method} {path} failed after {attempts} "
                        f"attempt(s): {exc}") from exc
                self._clock.sleep(self._retry.delay(attempts, self._rng))

    # -- mirrored surface -------------------------------------------------------

    def tenants(self) -> list[str]:
        return self._request("GET", "/v1/tenants")

    def benchmarks(self) -> list[dict]:
        return self._request("GET", "/v1/benchmarks")

    def all_status(self) -> dict:
        return self._request("GET", "/v1/status")

    def status(self, tenant: str, now: Optional[float] = None,
               window: Optional[float] = None) -> dict:
        # ``now`` mirrors ControlApi's signature for drop-in use (e.g. by
        # the game loop) but is ignored remotely: the server's clock rules.
        return self._request("GET", f"/v1/workloads/{tenant}/status"
                             + _window_query(window))

    def metrics(self, tenant: str, now: Optional[float] = None,
                window: Optional[float] = None) -> dict:
        """Streaming metrics: windowed throughput, latency quantiles,
        queue accounting.  ``now`` is accepted for ControlApi signature
        parity and ignored remotely."""
        return self._request("GET", f"/v1/workloads/{tenant}/metrics"
                             + _window_query(window))

    def all_metrics(self, window: Optional[float] = None) -> dict:
        return self._request("GET", "/v1/metrics" + _window_query(window))

    def presets(self, tenant: str) -> dict:
        return self._request("GET", f"/v1/workloads/{tenant}/presets")

    def set_rate(self, tenant: str, rate: object) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/rate",
                             {"rate": rate})

    def set_weights(self, tenant: str,
                    weights: Mapping[str, float]) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/weights",
                             {"weights": dict(weights)})

    def set_preset(self, tenant: str, preset: str) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/preset",
                             {"preset": preset})

    def set_think_time(self, tenant: str, seconds: float) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/think_time",
                             {"seconds": seconds})

    def pause(self, tenant: str) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/pause")

    def resume(self, tenant: str) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/resume")

    # -- faults / resilience (v1 only) --------------------------------------

    def get_faults(self, tenant: str) -> dict:
        return self._request("GET", f"/v1/workloads/{tenant}/faults")

    def set_faults(self, tenant: str,
                   fields: Mapping[str, object]) -> dict:
        return self._request("PUT", f"/v1/workloads/{tenant}/faults",
                             dict(fields))

    def get_resilience(self, tenant: str) -> dict:
        return self._request("GET", f"/v1/workloads/{tenant}/resilience")

    def set_resilience(self, tenant: str,
                       fields: Mapping[str, object]) -> dict:
        return self._request("PUT", f"/v1/workloads/{tenant}/resilience",
                             dict(fields))

    # -- lifecycle (v1 only) ------------------------------------------------

    def workloads(self) -> dict:
        return self._request("GET", "/v1/workloads")

    def create_workload(self, config: Mapping[str, object]) -> dict:
        return self._request("POST", "/v1/workloads", dict(config))

    def start_workload(self, tenant: str) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/start")

    def stop_workload(self, tenant: str) -> dict:
        return self._request("POST", f"/v1/workloads/{tenant}/stop")

    def delete_workload(self, tenant: str) -> dict:
        return self._request("DELETE", f"/v1/workloads/{tenant}")
