"""HTTP/JSON server exposing the control facade as a REST API.

Routes (all JSON):

    GET  /benchmarks                      -> paper Table 1
    GET  /status                          -> every tenant's status
    GET  /metrics                         -> every tenant's streaming metrics
    GET  /workloads/<tenant>/status
    GET  /workloads/<tenant>/metrics      ?window=<seconds>
    GET  /workloads/<tenant>/presets
    POST /workloads/<tenant>/rate         {"rate": 150 | "unlimited" | "disabled"}
    POST /workloads/<tenant>/weights      {"weights": {"NewOrder": 45, ...}}
    POST /workloads/<tenant>/preset       {"preset": "read-only"}
    POST /workloads/<tenant>/think_time   {"seconds": 0.01}
    POST /workloads/<tenant>/pause
    POST /workloads/<tenant>/resume

Status codes follow HTTP semantics: 404 for unknown paths and unknown
tenants, 405 (with an ``Allow`` header) for a known path hit with the
wrong method, 400 for malformed bodies or invalid control values.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import ApiError, ApiMethodNotAllowed, ApiNotFound
from .control import ControlApi

#: POST actions under /workloads/<tenant>/<action>.
_POST_ACTIONS = ("rate", "weights", "preset", "think_time", "pause",
                 "resume")
#: GET views under /workloads/<tenant>/<view>.
_GET_VIEWS = ("status", "metrics", "presets")


class ApiServer:
    """Runs the control API on a background HTTP server thread."""

    def __init__(self, control: ControlApi, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.control = control
        handler = _make_handler(control)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="api-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def _make_handler(control: ControlApi):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *_args) -> None:  # silence stderr spam
            pass

        # -- helpers --------------------------------------------------

        def _send(self, code: int, payload: object,
                  allow: tuple[str, ...] = ()) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if allow:
                self.send_header("Allow", ", ".join(allow))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length", "0"))
            if length == 0:
                return {}
            try:
                return json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                raise ApiError("request body is not valid JSON") from None

        def _window(self, query: dict) -> float:
            raw = query.get("window", ["5.0"])[0]
            try:
                window = float(raw)
            except ValueError:
                raise ApiError(f"window must be a number, got "
                               f"{raw!r}") from None
            if window <= 0:
                raise ApiError("window must be positive")
            return window

        def _route(self, method: str) -> None:
            split = urlsplit(self.path)
            parts = [p for p in split.path.split("/") if p]
            query = parse_qs(split.query)
            try:
                handlers = self._match(parts, query)
                if not handlers:
                    raise ApiNotFound(f"unknown path {split.path!r}")
                handler = handlers.get(method)
                if handler is None:
                    raise ApiMethodNotAllowed(
                        f"{method} not allowed on {split.path!r}",
                        allowed=tuple(sorted(handlers)))
                payload = handler()
            except ApiMethodNotAllowed as exc:
                self._send(405, {"ok": False, "error": str(exc)},
                           allow=exc.allowed)
            except ApiNotFound as exc:
                self._send(404, {"ok": False, "error": str(exc)})
            except ApiError as exc:
                self._send(400, {"ok": False, "error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._send(500, {"ok": False, "error": str(exc)})
            else:
                self._send(200, payload)

        def _match(self, parts: list[str], query: dict
                   ) -> dict[str, Callable[[], object]]:
            """Map the path to its {method: handler} table.

            An empty table means the path does not exist (404); a known
            path queried with a method missing from its table is a 405.
            """
            if parts == ["benchmarks"]:
                return {"GET": control.benchmarks}
            if parts == ["status"]:
                return {"GET": control.all_status}
            if parts == ["metrics"]:
                return {"GET": lambda: control.all_metrics(
                    window=self._window(query))}
            if parts == ["tenants"]:
                return {"GET": control.tenants}
            if len(parts) == 3 and parts[0] == "workloads":
                tenant, action = parts[1], parts[2]
                if action == "status":
                    return {"GET": lambda: control.status(
                        tenant, window=self._window(query))}
                if action == "metrics":
                    return {"GET": lambda: control.metrics(
                        tenant, window=self._window(query))}
                if action == "presets":
                    return {"GET": lambda: control.presets(tenant)}
                if action in _POST_ACTIONS:
                    return {"POST": lambda: self._post_action(
                        tenant, action)}
            return {}

        def _post_action(self, tenant: str, action: str) -> object:
            body = self._read_body()
            if action == "rate":
                return control.set_rate(tenant, body.get("rate"))
            if action == "weights":
                return control.set_weights(tenant,
                                           body.get("weights", {}))
            if action == "preset":
                return control.set_preset(tenant, body.get("preset", ""))
            if action == "think_time":
                return control.set_think_time(tenant,
                                              body.get("seconds", 0.0))
            if action == "pause":
                return control.pause(tenant)
            return control.resume(tenant)

        def do_GET(self) -> None:  # noqa: N802 - http.server naming
            self._route("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._route("POST")

        def do_PUT(self) -> None:  # noqa: N802
            self._route("PUT")

        def do_DELETE(self) -> None:  # noqa: N802
            self._route("DELETE")

        def do_PATCH(self) -> None:  # noqa: N802
            self._route("PATCH")

    return Handler
