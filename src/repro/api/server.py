"""HTTP/JSON server exposing the control facade as a REST API.

The surface is versioned under ``/v1`` (see docs/api.md for the full
route reference):

    GET    /v1/benchmarks                        -> paper Table 1
    GET    /v1/status                            -> every tenant's status
    GET    /v1/metrics                           -> every tenant's metrics
    GET    /v1/tenants
    GET    /v1/workloads                         -> registry with states
    POST   /v1/workloads                         {config body} -> create
    GET    /v1/workloads/<tenant>                -> status
    DELETE /v1/workloads/<tenant>                -> stop + unregister
    POST   /v1/workloads/<tenant>/start
    POST   /v1/workloads/<tenant>/stop
    GET    /v1/workloads/<tenant>/status
    GET    /v1/workloads/<tenant>/metrics        ?window=<seconds>
    GET    /v1/workloads/<tenant>/presets
    POST   /v1/workloads/<tenant>/rate           {"rate": 150|"unlimited"|"disabled"}
    POST   /v1/workloads/<tenant>/weights        {"weights": {"NewOrder": 45, ...}}
    POST   /v1/workloads/<tenant>/preset         {"preset": "read-only"}
    POST   /v1/workloads/<tenant>/think_time     {"seconds": 0.01}
    POST   /v1/workloads/<tenant>/pause
    POST   /v1/workloads/<tenant>/resume
    GET    /v1/workloads/<tenant>/faults
    PUT    /v1/workloads/<tenant>/faults         {"abort_probability": 0.05, ...}
    GET    /v1/workloads/<tenant>/resilience
    PUT    /v1/workloads/<tenant>/resilience     {"max_attempts": 4, ...}

v1 errors use a uniform envelope::

    {"error": {"code": "<symbol>", "message": "<human text>"}}

with codes ``bad_request`` (400), ``not_found`` (404),
``method_not_allowed`` (405, plus an ``Allow`` header), ``conflict``
(409), and ``internal`` (500).

The original unversioned routes remain as deprecated aliases: same
behaviour and same legacy error shape (``{"ok": false, "error": "..."}``)
so existing callers keep working, but every response carries a
``Deprecation: true`` header.  Lifecycle, faults, and resilience routes
are v1-only — they never existed unversioned.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import (ApiConflict, ApiError, ApiMethodNotAllowed,
                      ApiNotFound)
from .control import ControlApi
from .lifecycle import WorkloadHost

#: POST actions under /workloads/<tenant>/<action> (legacy and v1).
_POST_ACTIONS = ("rate", "weights", "preset", "think_time", "pause",
                 "resume")
#: GET views under /workloads/<tenant>/<view> (legacy and v1).
_GET_VIEWS = ("status", "metrics", "presets")
#: Lifecycle actions under /v1/workloads/<tenant>/<action> (v1 only).
_LIFECYCLE_ACTIONS = ("start", "stop")
#: GET+PUT resources under /v1/workloads/<tenant>/<resource> (v1 only).
_PUT_RESOURCES = ("faults", "resilience")


class ApiServer:
    """Runs the control API on a background HTTP server thread."""

    def __init__(self, control: ControlApi, host: str = "127.0.0.1",
                 port: int = 0,
                 workloads: Optional[WorkloadHost] = None) -> None:
        self.control = control
        self.workloads = workloads or WorkloadHost(control)
        handler = _make_handler(control, self.workloads)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="api-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self.workloads.shutdown()

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def _make_handler(control: ControlApi, host: WorkloadHost):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *_args) -> None:  # silence stderr spam
            pass

        # -- helpers --------------------------------------------------

        def _send(self, code: int, payload: object,
                  allow: tuple[str, ...] = (),
                  deprecated: bool = False) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if allow:
                self.send_header("Allow", ", ".join(allow))
            if deprecated:
                self.send_header("Deprecation", "true")
                self.send_header("Link", '</v1>; rel="successor-version"')
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length", "0"))
            if length == 0:
                return {}
            try:
                return json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                raise ApiError("request body is not valid JSON") from None

        def _window(self, query: dict) -> float:
            raw = query.get("window", ["5.0"])[0]
            try:
                window = float(raw)
            except ValueError:
                raise ApiError(f"window must be a number, got "
                               f"{raw!r}") from None
            if window <= 0:
                raise ApiError("window must be positive")
            return window

        def _error(self, exc: Exception, code: int, symbol: str,
                   v1: bool) -> object:
            """The error payload: v1 envelope or the legacy shape."""
            if v1:
                return {"error": {"code": symbol, "message": str(exc)}}
            return {"ok": False, "error": str(exc)}

        def _route(self, method: str) -> None:
            split = urlsplit(self.path)
            parts = [p for p in split.path.split("/") if p]
            v1 = bool(parts) and parts[0] == "v1"
            if v1:
                parts = parts[1:]
            deprecated = not v1
            query = parse_qs(split.query)
            try:
                handlers = self._match(parts, query, v1)
                if not handlers:
                    raise ApiNotFound(f"unknown path {split.path!r}")
                handler = handlers.get(method)
                if handler is None:
                    raise ApiMethodNotAllowed(
                        f"{method} not allowed on {split.path!r}",
                        allowed=tuple(sorted(handlers)))
                payload = handler()
            except ApiMethodNotAllowed as exc:
                self._send(405,
                           self._error(exc, 405, "method_not_allowed", v1),
                           allow=exc.allowed, deprecated=deprecated)
            except ApiNotFound as exc:
                self._send(404, self._error(exc, 404, "not_found", v1),
                           deprecated=deprecated)
            except ApiConflict as exc:
                self._send(409, self._error(exc, 409, "conflict", v1),
                           deprecated=deprecated)
            except ApiError as exc:
                self._send(400, self._error(exc, 400, "bad_request", v1),
                           deprecated=deprecated)
            except Exception as exc:  # pragma: no cover - defensive
                self._send(500, self._error(exc, 500, "internal", v1),
                           deprecated=deprecated)
            else:
                self._send(200, payload, deprecated=deprecated)

        def _match(self, parts: list[str], query: dict, v1: bool
                   ) -> dict[str, Callable[[], object]]:
            """Map the path to its {method: handler} table.

            An empty table means the path does not exist (404); a known
            path queried with a method missing from its table is a 405.
            Lifecycle, faults, and resilience routes only exist when
            ``v1`` is set.
            """
            if parts == ["benchmarks"]:
                return {"GET": control.benchmarks}
            if parts == ["status"]:
                return {"GET": control.all_status}
            if parts == ["metrics"]:
                return {"GET": lambda: control.all_metrics(
                    window=self._window(query))}
            if parts == ["tenants"]:
                return {"GET": control.tenants}
            if v1 and parts == ["workloads"]:
                return {"GET": host.list,
                        "POST": lambda: host.create(self._read_body())}
            if v1 and len(parts) == 2 and parts[0] == "workloads":
                tenant = parts[1]
                return {"GET": lambda: control.status(tenant),
                        "DELETE": lambda: host.delete(tenant)}
            if len(parts) == 3 and parts[0] == "workloads":
                tenant, action = parts[1], parts[2]
                if action == "status":
                    return {"GET": lambda: control.status(
                        tenant, window=self._window(query))}
                if action == "metrics":
                    return {"GET": lambda: control.metrics(
                        tenant, window=self._window(query))}
                if action == "presets":
                    return {"GET": lambda: control.presets(tenant)}
                if action in _POST_ACTIONS:
                    return {"POST": lambda: self._post_action(
                        tenant, action)}
                if v1 and action in _LIFECYCLE_ACTIONS:
                    verb = host.start if action == "start" else host.stop
                    return {"POST": lambda: verb(tenant)}
                if v1 and action == "faults":
                    return {"GET": lambda: control.get_faults(tenant),
                            "PUT": lambda: control.set_faults(
                                tenant, self._read_body())}
                if v1 and action == "resilience":
                    return {"GET": lambda: control.get_resilience(tenant),
                            "PUT": lambda: control.set_resilience(
                                tenant, self._read_body())}
            return {}

        def _post_action(self, tenant: str, action: str) -> object:
            body = self._read_body()
            if action == "rate":
                return control.set_rate(tenant, body.get("rate"))
            if action == "weights":
                return control.set_weights(tenant,
                                           body.get("weights", {}))
            if action == "preset":
                return control.set_preset(tenant, body.get("preset", ""))
            if action == "think_time":
                return control.set_think_time(tenant,
                                              body.get("seconds", 0.0))
            if action == "pause":
                return control.pause(tenant)
            return control.resume(tenant)

        def do_GET(self) -> None:  # noqa: N802 - http.server naming
            self._route("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._route("POST")

        def do_PUT(self) -> None:  # noqa: N802
            self._route("PUT")

        def do_DELETE(self) -> None:  # noqa: N802
            self._route("DELETE")

        def do_PATCH(self) -> None:  # noqa: N802
            self._route("PATCH")

    return Handler
