"""HTTP/JSON server exposing the control facade as a REST API.

Routes (all JSON):

    GET  /benchmarks                      -> paper Table 1
    GET  /status                          -> every tenant's status
    GET  /workloads/<tenant>/status
    GET  /workloads/<tenant>/presets
    POST /workloads/<tenant>/rate         {"rate": 150 | "unlimited" | "disabled"}
    POST /workloads/<tenant>/weights      {"weights": {"NewOrder": 45, ...}}
    POST /workloads/<tenant>/preset       {"preset": "read-only"}
    POST /workloads/<tenant>/think_time   {"seconds": 0.01}
    POST /workloads/<tenant>/pause
    POST /workloads/<tenant>/resume
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..errors import ApiError
from .control import ControlApi


class ApiServer:
    """Runs the control API on a background HTTP server thread."""

    def __init__(self, control: ControlApi, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.control = control
        handler = _make_handler(control)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="api-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def _make_handler(control: ControlApi):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *_args) -> None:  # silence stderr spam
            pass

        # -- helpers --------------------------------------------------

        def _send(self, code: int, payload: object) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length", "0"))
            if length == 0:
                return {}
            try:
                return json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                raise ApiError("request body is not valid JSON") from None

        def _route(self, method: str) -> None:
            parts = [p for p in self.path.split("/") if p]
            try:
                payload = self._dispatch(method, parts)
            except ApiError as exc:
                self._send(400, {"ok": False, "error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._send(500, {"ok": False, "error": str(exc)})
            else:
                self._send(200, payload)

        def _dispatch(self, method: str, parts: list[str]) -> object:
            if method == "GET":
                if parts == ["benchmarks"]:
                    return control.benchmarks()
                if parts == ["status"]:
                    return control.all_status()
                if parts == ["tenants"]:
                    return control.tenants()
                if (len(parts) == 3 and parts[0] == "workloads"
                        and parts[2] == "status"):
                    return control.status(parts[1])
                if (len(parts) == 3 and parts[0] == "workloads"
                        and parts[2] == "presets"):
                    return control.presets(parts[1])
                raise ApiError(f"unknown GET path {self.path!r}")
            if method == "POST":
                if len(parts) == 3 and parts[0] == "workloads":
                    tenant, action = parts[1], parts[2]
                    body = self._read_body()
                    if action == "rate":
                        return control.set_rate(tenant, body.get("rate"))
                    if action == "weights":
                        return control.set_weights(
                            tenant, body.get("weights", {}))
                    if action == "preset":
                        return control.set_preset(
                            tenant, body.get("preset", ""))
                    if action == "think_time":
                        return control.set_think_time(
                            tenant, body.get("seconds", 0.0))
                    if action == "pause":
                        return control.pause(tenant)
                    if action == "resume":
                        return control.resume(tenant)
                raise ApiError(f"unknown POST path {self.path!r}")
            raise ApiError(f"unsupported method {method}")

        def do_GET(self) -> None:  # noqa: N802 - http.server naming
            self._route("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._route("POST")

    return Handler
